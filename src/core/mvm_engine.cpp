#include "core/mvm_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "earth/machine.hpp"
#include "inspector/rotation.hpp"
#include "support/check.hpp"

namespace earthred::core {

using earth::Cycles;
using earth::EarthMachine;
using earth::FiberContext;
using earth::FiberId;
using inspector::RotationSchedule;

namespace {

/// Nonzeros of one processor's rows, bucketed by column portion and laid
/// out contiguously per bucket (the gathered streaming layout the cost
/// model addresses).
struct Buckets {
  std::vector<std::uint64_t> offsets;  // per portion, into the arrays below
  std::vector<std::uint32_t> row_local;
  std::vector<std::uint32_t> col;
  std::vector<double> val;
};

Buckets bucket_nonzeros(const sparse::CsrMatrix& A, std::uint32_t row_begin,
                        std::uint32_t row_end,
                        const RotationSchedule& sched) {
  Buckets b;
  const std::uint32_t np = sched.num_portions();
  b.offsets.assign(np + 1, 0);
  const auto row_ptr = A.row_ptr();
  const auto col_idx = A.col_idx();
  const auto values = A.values();
  for (std::uint32_t r = row_begin; r < row_end; ++r)
    for (std::uint64_t j = row_ptr[r]; j < row_ptr[r + 1]; ++j)
      ++b.offsets[sched.portion_of(col_idx[j]) + 1];
  for (std::uint32_t pid = 0; pid < np; ++pid)
    b.offsets[pid + 1] += b.offsets[pid];
  const std::uint64_t total = b.offsets[np];
  b.row_local.resize(total);
  b.col.resize(total);
  b.val.resize(total);
  std::vector<std::uint64_t> cur(b.offsets.begin(), b.offsets.end() - 1);
  for (std::uint32_t r = row_begin; r < row_end; ++r) {
    for (std::uint64_t j = row_ptr[r]; j < row_ptr[r + 1]; ++j) {
      const std::uint32_t pid = sched.portion_of(col_idx[j]);
      const std::uint64_t slot = cur[pid]++;
      b.row_local[slot] = r - row_begin;
      b.col[slot] = col_idx[j];
      b.val[slot] = values[j];
    }
  }
  return b;
}

std::uint32_t block_begin(std::uint32_t n, std::uint32_t P, std::uint32_t p) {
  const std::uint32_t q = n / P, r = n % P;
  return p * q + std::min(p, r);
}

}  // namespace

RunResult run_mvm_engine(const sparse::CsrMatrix& A,
                         std::span<const double> x, const MvmOptions& opt) {
  ER_EXPECTS(A.nrows() >= 1 && A.ncols() >= 1);
  ER_EXPECTS(x.size() == A.ncols());
  ER_EXPECTS(opt.num_procs >= 1 && opt.k >= 1 && opt.sweeps >= 1);

  const std::uint32_t P = opt.num_procs;
  const std::uint32_t kp = P * opt.k;
  const RotationSchedule sched(A.ncols(), P, opt.k);

  earth::ArrayTagAllocator alloc;
  const earth::ArrayTag tag_x = alloc.next();
  const earth::ArrayTag tag_y = alloc.next();
  const earth::ArrayTag tag_acol = alloc.next();
  const earth::ArrayTag tag_aval = alloc.next();
  const earth::ArrayTag tag_arow = alloc.next();

  struct ProcState {
    std::uint32_t row_begin = 0, row_end = 0;
    Buckets buckets;
    std::vector<double> x_local;  // full length; non-resident = NaN
    std::vector<double> y_local;
  };
  std::vector<ProcState> procs(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    ProcState& ps = procs[p];
    ps.row_begin = block_begin(A.nrows(), P, p);
    ps.row_end = block_begin(A.nrows(), P, p + 1);
    ps.buckets = bucket_nonzeros(A, ps.row_begin, ps.row_end, sched);
    // Poison non-resident x regions: a scheduling bug that reads a portion
    // before it arrived surfaces as NaN in the validated result.
    ps.x_local.assign(A.ncols(), std::numeric_limits<double>::quiet_NaN());
    for (std::uint32_t j = 0; j < opt.k; ++j) {
      const std::uint32_t pid = sched.initial_portion(p, j);
      for (std::uint32_t e = sched.portion_begin(pid);
           e < sched.portion_end(pid); ++e)
        ps.x_local[e] = x[e];
    }
    ps.y_local.assign(ps.row_end - ps.row_begin, 0.0);
  }

  earth::MachineConfig mcfg = opt.machine;
  mcfg.num_nodes = P;
  EarthMachine m(mcfg);

  // Stage 1: the local bucketing pass (replaces the LightInspector).
  for (std::uint32_t p = 0; p < P; ++p) {
    const std::uint64_t work =
        procs[p].buckets.val.size() * opt.bucketing_cycles_per_nnz;
    const FiberId f = m.add_fiber(
        p, 0, [work](FiberContext& ctx) { ctx.charge(work); },
        "bucketing[" + std::to_string(p) + "]");
    m.credit(f);
  }
  const Cycles t_inspector = m.run();

  // Stage 2: the rotating sweep graph.
  RunResult result;
  if (opt.collect_results)
    result.reduction.assign(1, std::vector<double>(A.nrows(), 0.0));

  std::vector<std::vector<FiberId>> compute(P, std::vector<FiberId>(kp));
  const std::uint32_t sweeps = opt.sweeps;
  const bool collect = opt.collect_results;

  for (std::uint32_t p = 0; p < P; ++p) {
    for (std::uint32_t ph = 0; ph < kp; ++ph) {
      compute[p][ph] = m.add_fiber(
          p, 2,
          [&, p, ph](FiberContext& ctx) {
            ProcState& ps = procs[p];
            const std::uint64_t sweep = ctx.activation();

            // New sweep: clear the local y rows.
            if (ph == 0) {
              std::fill(ps.y_local.begin(), ps.y_local.end(), 0.0);
              for (std::uint32_t r = 0; r < ps.y_local.size(); ++r)
                ctx.store(tag_y, r);
            }

            const std::uint32_t pid = sched.owned_portion(p, ph);
            const std::uint64_t b0 = ps.buckets.offsets[pid];
            const std::uint64_t b1 = ps.buckets.offsets[pid + 1];
            ctx.charge_intops(4 + (b1 - b0));
            for (std::uint64_t s = b0; s < b1; ++s) {
              const std::uint32_t rloc = ps.buckets.row_local[s];
              const std::uint32_t c = ps.buckets.col[s];
              ctx.load(tag_arow, s, 4);
              ctx.load(tag_acol, s, 4);
              ctx.load(tag_aval, s, 8);
              ctx.load(tag_x, c, 8);
              ctx.load(tag_y, rloc, 8);
              ctx.charge_flops(2);
              ctx.store(tag_y, rloc, 8);
              ps.y_local[rloc] += ps.buckets.val[s] * ps.x_local[c];
            }

            if (collect && sweep + 1 == sweeps && ph + 1 == kp) {
              std::copy(ps.y_local.begin(), ps.y_local.end(),
                        result.reduction[0].begin() + ps.row_begin);
            }

            // Forward the x portion around the ring.
            std::uint32_t tph = ph + opt.k;
            std::uint64_t tsweep = sweep + (tph >= kp ? 1 : 0);
            tph %= kp;
            if (tsweep < sweeps) {
              const std::uint32_t q = sched.next_owner(p);
              const std::uint32_t begin = sched.portion_begin(pid);
              const std::uint32_t end = sched.portion_end(pid);
              ctx.send(compute[q][tph],
                       static_cast<std::uint64_t>(end - begin) * 8,
                       [&procs, p, q, begin, end] {
                         std::copy(procs[p].x_local.begin() + begin,
                                   procs[p].x_local.begin() + end,
                                   procs[q].x_local.begin() + begin);
                       });
            }

            std::uint32_t nph = ph + 1;
            std::uint64_t nsweep = sweep + (nph == kp ? 1 : 0);
            nph %= kp;
            if (nsweep < sweeps) ctx.sync(compute[p][nph]);
          },
          "mvm[" + std::to_string(p) + "][" + std::to_string(ph) + "]");
    }
  }

  for (std::uint32_t p = 0; p < P; ++p) {
    m.credit(compute[p][0], 2);
    for (std::uint32_t ph = 1; ph < opt.k && ph < kp; ++ph)
      m.credit(compute[p][ph], 1);
  }

  result.total_cycles = m.run();
  result.inspector_cycles = t_inspector;
  result.machine = m.stats();
  if (mcfg.trace) result.gantt = m.trace().render_gantt(P);
  result.phases_per_proc = kp;
  result.phase_iterations.reserve(static_cast<std::size_t>(P) * kp);
  for (std::uint32_t p = 0; p < P; ++p) {
    for (std::uint32_t ph = 0; ph < kp; ++ph) {
      const std::uint32_t pid = sched.owned_portion(p, ph);
      result.phase_iterations.push_back(procs[p].buckets.offsets[pid + 1] -
                                        procs[p].buckets.offsets[pid]);
    }
  }

  for (std::uint32_t p = 0; p < P; ++p)
    for (std::uint32_t ph = 0; ph < kp; ++ph)
      ER_ENSURES_MSG(m.fiber_activations(compute[p][ph]) == sweeps,
                     "mvm phase fiber fired wrong number of times");
  return result;
}

}  // namespace earthred::core
