// Serialization of ExecutionPlans for the persistent plan store.
//
// One file per plan: a 112-byte little-endian header followed by a flat
// payload (docs/architecture.md section 11):
//
//   offset  field
//        0  u64 magic                 "ERPLAN01"
//        8  u32 format_version        kPlanFormatVersion
//       12  u32 endian_tag            0x01020304 as the producer wrote it
//       16  u64 verifier_fingerprint  inspector::kPlanVerifierFingerprint
//       24  u64 content_hash          kernel_fingerprint of the mesh
//       32  u32 num_procs, k, distribution, block_cyclic_size,
//           dedup_buffers
//       52  u32 num_nodes
//       56  u64 num_edges
//       64  u32 num_refs, num_reduction_arrays, num_node_read_arrays,
//           strategy (requested StrategyKind; 0 == Auto, which is also
//           what pre-strategy files wrote as their reserved field)
//       80  u64 payload_bytes
//       88  u64 payload_checksum      support::fast_hash64 of the payload
//       96  u32 layout (requested LayoutKind), applied_layout,
//           tile_iters, pad          (new in format v2)
//
// The payload serializes build_seconds, the layout permutation and its
// inverse (empty arrays when the plan carries no renumbering), then each
// processor's inspector output, every u32 array as a count +
// 8-byte-aligned data — the
// alignment that lets load_plan_file adopt the arrays as views into the
// file's memory mapping (zero-copy warm start; the mapping's lifetime is
// held by ExecutionPlan::storage). Per-phase `indir` rows are not
// serialized: only the flattened ref-major block is stored and the loader
// reconstructs row r as the subspan indir_flat[r*n, (r+1)*n) — exactly
// the flatten invariant the verifier's E-PLAN-FLAT check enforces, proven
// on the loaded-plan fast path by pointer identity.
//
// Trust model: disk is untrusted input. A load is admitted only after
// header identity (magic/endian/version/verifier), the payload checksum,
// a bounds-checked structural parse against the header counts, and a
// budget-mode verify_plan() pass. Every failure is a coded E-STORE-*
// result, never an exception:
//
//   E-STORE-OPEN      file missing or unreadable (simply "not stored")
//   E-STORE-TRUNC     shorter than the header, or than payload_bytes
//   E-STORE-MAGIC     not a plan file
//   E-STORE-ENDIAN    written by a foreign-endian producer
//   E-STORE-VERSION   format_version != kPlanFormatVersion (no
//                     cross-version reads: plans are always rebuildable)
//   E-STORE-VERIFIER  persisted under a different invariant set
//   E-STORE-CHECKSUM  payload hash mismatch (reported in preference to
//                     parse/verify failures: corruption names its cause)
//   E-STORE-PARSE     structurally inconsistent with the header counts
//   E-STORE-PERM      layout permutation is truncated or not a bijection
//   E-STORE-VERIFY    parsed, but failed the budget-mode plan verifier
//   E-STORE-KEY       (PlanStore::load) header identity does not match
//                     the requested key
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/native_engine.hpp"

namespace earthred::core {

inline constexpr std::uint64_t kPlanMagic = 0x31304e414c505245ull;  // "ERPLAN01"
/// v2 (layout): header grew 96 -> 112 bytes (layout kinds + tile size at
/// offset 96) and the payload gained the permutation arrays right after
/// build_seconds. No cross-version reads — plans are always rebuildable.
inline constexpr std::uint32_t kPlanFormatVersion = 2;
inline constexpr std::uint32_t kPlanEndianTag = 0x01020304u;
inline constexpr std::size_t kPlanHeaderBytes = 112;

/// Decoded fixed header of a plan file (everything before the payload).
struct PlanFileHeader {
  std::uint32_t format_version = kPlanFormatVersion;
  std::uint64_t verifier_fingerprint = 0;
  std::uint64_t content_hash = 0;
  std::uint32_t num_procs = 0;
  std::uint32_t k = 0;
  std::uint32_t distribution = 0;  ///< inspector::Distribution as u32
  std::uint32_t block_cyclic_size = 0;
  std::uint32_t dedup_buffers = 0;
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t num_refs = 0;
  std::uint32_t num_reduction_arrays = 0;
  std::uint32_t num_node_read_arrays = 0;
  /// Requested StrategyKind as u32 (0 == Auto; pre-strategy files wrote
  /// a zero reserved field here, which decodes as Auto unchanged).
  std::uint32_t strategy = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
  /// Requested LayoutKind as u32 (0 == None).
  std::uint32_t layout = 0;
  /// LayoutKind the build actually applied (never Auto).
  std::uint32_t applied_layout = 0;
  /// Cache-blocking tile size (0 = untiled).
  std::uint32_t tile_iters = 0;
};

/// Outcome of load_plan_file / PlanStore::load: either a validated plan
/// or a coded rejection. Never both.
struct PlanLoadResult {
  std::shared_ptr<const ExecutionPlan> plan;
  /// True when the plan's arrays are views into the file mapping (false
  /// on the read(2) fallback of filesystems without mmap).
  bool zero_copy = false;
  std::string error_code;  ///< E-STORE-* when plan is null
  std::string detail;
  bool ok() const { return plan != nullptr; }
};

/// Serializes `plan` (header + payload) for `content_hash`. The plan must
/// be canonical (it is: build_execution_plan and patch_execution_plan
/// both produce canonical plans).
std::vector<std::byte> serialize_plan(const ExecutionPlan& plan,
                                      std::uint64_t content_hash);

/// Reads and validates only the 112-byte header — the cheap identity check
/// PlanStore::load and `plan ls` run before trusting a payload. Returns
/// nullopt with `code`/`detail` set on any header-level rejection.
std::optional<PlanFileHeader> read_plan_header(const std::string& path,
                                               std::string* code = nullptr,
                                               std::string* detail = nullptr);

/// The full untrusted-input chain: mmap, header identity, payload
/// checksum (overlapped on a helper thread with the structural parse),
/// bounds-checked parse, budget-mode verifier. On success the plan's
/// large arrays are zero-copy views into the mapping.
PlanLoadResult load_plan_file(const std::string& path);

/// Deep structural equality of two plans: shape, plan-key options,
/// schedule parameters, and every inspector array. build_seconds and the
/// storage backing are excluded — "the same plan" means the executors
/// would do bit-identical work, not that the objects share provenance.
bool plans_bit_identical(const ExecutionPlan& a, const ExecutionPlan& b);

}  // namespace earthred::core
