#include "core/reduction_engine.hpp"

#include <algorithm>
#include <cmath>

#include "earth/machine.hpp"
#include "inspector/rotation.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

namespace earthred::core {

using earth::Cycles;
using earth::EarthMachine;
using earth::FiberContext;
using earth::FiberId;
using inspector::InspectorResult;
using inspector::RotationSchedule;

namespace {

/// Everything one simulated processor owns.
struct ProcState {
  ProcArrays arrays;
  InspectorResult insp;
  /// Prefix sums of phase sizes: slot_base[ph] + j is the streaming slot
  /// of the j-th iteration of phase ph (cost-model addressing).
  std::vector<std::uint64_t> slot_base;
};

CostTags make_tags(const KernelShape& shape) {
  earth::ArrayTagAllocator alloc;
  CostTags tags;
  for (std::uint32_t a = 0; a < shape.num_reduction_arrays; ++a)
    tags.reduction.push_back(alloc.next());
  for (std::uint32_t a = 0; a < shape.num_node_read_arrays; ++a)
    tags.node_read.push_back(alloc.next());
  tags.edge_data = alloc.next();
  tags.indir = alloc.next();
  return tags;
}

}  // namespace

RunResult run_rotation_engine(const PhasedKernel& kernel,
                              const RotationOptions& opt) {
  const KernelShape shape = kernel.shape();
  ER_EXPECTS(opt.num_procs >= 1);
  ER_EXPECTS(opt.k >= 1);
  ER_EXPECTS(opt.sweeps >= 1);
  ER_EXPECTS(shape.num_refs >= 1);
  ER_EXPECTS(shape.num_reduction_arrays >= 1);

  const std::uint32_t P = opt.num_procs;
  const std::uint32_t kp = P * opt.k;
  const RotationSchedule sched(shape.num_nodes, P, opt.k);
  const CostTags tags = make_tags(shape);

  // ---- runtime preprocessing (host side; charged on-machine below) ----
  const auto owned_iters = inspector::distribute_iterations(
      shape.num_edges, P, opt.distribution, opt.block_cyclic_size);

  std::vector<ProcState> procs(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    inspector::IterationRefs refs;
    refs.global_iter = owned_iters[p];
    refs.refs.resize(shape.num_refs);
    for (std::uint32_t r = 0; r < shape.num_refs; ++r) {
      refs.refs[r].reserve(refs.global_iter.size());
      for (std::uint32_t e : refs.global_iter)
        refs.refs[r].push_back(kernel.ref(r, e));
    }
    procs[p].insp =
        inspector::run_light_inspector(sched, p, refs, opt.inspector);

    procs[p].arrays.reduction.assign(
        shape.num_reduction_arrays,
        std::vector<double>(procs[p].insp.local_array_size, 0.0));
    procs[p].arrays.node_read.assign(
        shape.num_node_read_arrays,
        std::vector<double>(shape.num_nodes, 0.0));
    kernel.init_node_arrays(procs[p].arrays.node_read);

    procs[p].slot_base.assign(kp + 1, 0);
    for (std::uint32_t ph = 0; ph < kp; ++ph)
      procs[p].slot_base[ph + 1] =
          procs[p].slot_base[ph] + procs[p].insp.phases[ph].iter_global.size();
  }

  // ---- machine & fiber graph ------------------------------------------
  earth::MachineConfig mcfg = opt.machine;
  mcfg.num_nodes = P;
  EarthMachine m(mcfg);

  // Stage 1: charge the LightInspector (local work, no communication).
  ER_EXPECTS(opt.inspector_work_items.empty() ||
             opt.inspector_work_items.size() == P);
  for (std::uint32_t p = 0; p < P; ++p) {
    const std::uint64_t items = opt.inspector_work_items.empty()
                                    ? owned_iters[p].size()
                                    : opt.inspector_work_items[p];
    const std::uint64_t work =
        items * shape.num_refs * opt.inspector_cycles_per_ref;
    const FiberId f = m.add_fiber(
        p, 0, [work](FiberContext& ctx) { ctx.charge(work); },
        "inspector[" + std::to_string(p) + "]");
    m.credit(f);
  }
  const Cycles t_inspector = m.run();

  // Stage 2: the phased sweep graph.
  std::vector<std::vector<FiberId>> compute(P, std::vector<FiberId>(kp));
  // channel_gate[p][q]: counts the k node-read broadcasts per sweep that
  // processor p receives from q; fires once per sweep per sender and
  // contributes one signal to compute[p][0]. Per-channel counting is safe
  // because each sender's messages arrive in order (port serialization),
  // so counts can never mix sweeps.
  std::vector<std::vector<FiberId>> channel_gate(P, std::vector<FiberId>(P));

  const std::uint32_t sweeps = opt.sweeps;
  const bool collect = opt.collect_results;

  // Reliable transport (opt.reliable): one channel per ring edge and
  // target phase (ring_ch[q][tph], fed by ring_sender(q)) and one per
  // (receiver, portion) replication pair (bc_ch[q][pid], fed by the
  // portion's final owner). Each channel carries a fixed [begin, end)
  // region, so its accept callback knows where to scatter; the channels
  // are built after the gates below, once every notify fiber exists —
  // the compute bodies capture the (empty) vectors by reference.
  std::vector<std::vector<std::unique_ptr<earth::ReliableChannel>>> ring_ch(
      P);
  std::vector<std::vector<std::unique_ptr<earth::ReliableChannel>>> bc_ch(P);

  RunResult result;
  if (collect) {
    result.reduction.assign(shape.num_reduction_arrays,
                            std::vector<double>(shape.num_nodes, 0.0));
  }

  for (std::uint32_t p = 0; p < P; ++p) {
    for (std::uint32_t ph = 0; ph < kp; ++ph) {
      const std::uint32_t sync =
          (ph == 0) ? (P > 1 ? 2 + (P - 1) : 2) : 2;
      compute[p][ph] = m.add_fiber(
          p, sync,
          [&, p, ph](FiberContext& ctx) {
            ProcState& ps = procs[p];
            const inspector::PhaseSchedule& phase = ps.insp.phases[ph];
            const std::uint64_t sweep = ctx.activation();

            // -- main loop: iterations assigned to this phase ----------
            ctx.charge_intops(4 + phase.iter_global.size());
            std::vector<std::uint32_t> redirected(shape.num_refs);
            for (std::size_t j = 0; j < phase.iter_global.size(); ++j) {
              for (std::uint32_t r = 0; r < shape.num_refs; ++r) {
                redirected[r] = phase.indir[r][j];
                ctx.load(tags.indir,
                         (ps.slot_base[ph] + j) * shape.num_refs + r, 4);
              }
              // Edge-aligned data is NOT gathered into per-phase copies
              // (the inspector rewrites only the indirection arrays), so
              // its cost address is the iteration's position in the local
              // edge arrays — strided within a phase, which is the
              // locality the paper reports losing to phase partitioning.
              kernel.compute_edge(ctx, tags, phase.iter_global[j],
                                  phase.iter_local[j], redirected,
                                  ps.arrays);
            }

            // -- second loop: fold buffered contributions --------------
            ctx.charge_intops(2 + phase.copy_dst.size());
            for (std::size_t j = 0; j < phase.copy_dst.size(); ++j) {
              const std::uint32_t dst = phase.copy_dst[j];
              const std::uint32_t src = phase.copy_src[j];
              for (std::uint32_t a = 0; a < shape.num_reduction_arrays;
                   ++a) {
                ctx.load(tags.reduction[a], src);
                ctx.load(tags.reduction[a], dst);
                ctx.charge_flops(1);
                ctx.store(tags.reduction[a], dst);
                ctx.store(tags.reduction[a], src);
                ps.arrays.reduction[a][dst] += ps.arrays.reduction[a][src];
                ps.arrays.reduction[a][src] = 0.0;
              }
            }

            const std::uint32_t pid = sched.owned_portion(p, ph);
            const std::uint32_t begin = sched.portion_begin(pid);
            const std::uint32_t end = sched.portion_end(pid);

            // -- portion complete: node update + replication ------------
            if (sched.last_owning_phase(pid) == ph) {
              kernel.update_nodes(ctx, tags, begin, end, begin, ps.arrays);

              if (collect && sweep + 1 == sweeps) {
                for (std::uint32_t a = 0; a < shape.num_reduction_arrays;
                     ++a)
                  std::copy(ps.arrays.reduction[a].begin() + begin,
                            ps.arrays.reduction[a].begin() + end,
                            result.reduction[a].begin() + begin);
              }

              // Zero the portion so the next sweep accumulates afresh.
              for (std::uint32_t a = 0; a < shape.num_reduction_arrays;
                   ++a) {
                std::fill(ps.arrays.reduction[a].begin() + begin,
                          ps.arrays.reduction[a].begin() + end, 0.0);
                for (std::uint32_t e = begin; e < end; ++e)
                  ctx.store(tags.reduction[a], e);
              }

              // Broadcast the refreshed node-read portion.
              if (opt.reliable) {
                const std::size_t len = end - begin;
                std::vector<double> buf(len * shape.num_node_read_arrays);
                for (std::uint32_t a = 0; a < shape.num_node_read_arrays;
                     ++a)
                  std::copy(ps.arrays.node_read[a].begin() + begin,
                            ps.arrays.node_read[a].begin() + end,
                            buf.begin() + a * len);
                for (std::uint32_t q = 0; q < P; ++q) {
                  if (q == p) continue;
                  bc_ch[q][pid]->send(ctx, buf.data(), buf.size());
                }
              } else {
                const std::uint64_t bbytes =
                    static_cast<std::uint64_t>(end - begin) * 8 *
                    std::max<std::uint32_t>(shape.num_node_read_arrays, 1);
                for (std::uint32_t q = 0; q < P; ++q) {
                  if (q == p) continue;
                  ctx.send(channel_gate[q][p], bbytes,
                           [&procs, p, q, begin, end, &shape] {
                             for (std::uint32_t a = 0;
                                  a < shape.num_node_read_arrays; ++a)
                               std::copy(
                                   procs[p].arrays.node_read[a].begin() +
                                       begin,
                                   procs[p].arrays.node_read[a].begin() + end,
                                   procs[q].arrays.node_read[a].begin() +
                                       begin);
                           });
                }
              }
            }

            // -- forward the reduction portion around the ring ----------
            std::uint32_t tph = ph + opt.k;
            std::uint64_t tsweep = sweep + (tph >= kp ? 1 : 0);
            tph %= kp;
            if (tsweep < sweeps) {
              const std::uint32_t q = sched.next_owner(p);
              if (opt.reliable) {
                const std::size_t len = end - begin;
                std::vector<double> buf(len * shape.num_reduction_arrays);
                for (std::uint32_t a = 0; a < shape.num_reduction_arrays;
                     ++a)
                  std::copy(ps.arrays.reduction[a].begin() + begin,
                            ps.arrays.reduction[a].begin() + end,
                            buf.begin() + a * len);
                ring_ch[q][tph]->send(ctx, buf.data(), buf.size());
              } else {
                const std::uint64_t pbytes =
                    static_cast<std::uint64_t>(end - begin) * 8 *
                    shape.num_reduction_arrays;
                ctx.send(compute[q][tph], pbytes,
                         [&procs, p, q, begin, end, &shape] {
                           for (std::uint32_t a = 0;
                                a < shape.num_reduction_arrays; ++a)
                             std::copy(
                                 procs[p].arrays.reduction[a].begin() + begin,
                                 procs[p].arrays.reduction[a].begin() + end,
                                 procs[q].arrays.reduction[a].begin() +
                                     begin);
                         });
              }
            }

            // -- chain to the next local phase ---------------------------
            std::uint32_t nph = ph + 1;
            std::uint64_t nsweep = sweep + (nph == kp ? 1 : 0);
            nph %= kp;
            if (nsweep < sweeps) ctx.sync(compute[p][nph]);
          },
          "compute[" + std::to_string(p) + "][" + std::to_string(ph) + "]");
    }
  }

  if (P > 1) {
    for (std::uint32_t p = 0; p < P; ++p) {
      for (std::uint32_t q = 0; q < P; ++q) {
        if (q == p) continue;
        channel_gate[p][q] = m.add_fiber(
            p, opt.k,
            [&, p](FiberContext& ctx) { ctx.sync(compute[p][0]); },
            "gate[" + std::to_string(p) + "<-" + std::to_string(q) + "]");
      }
    }
  }

  if (opt.reliable) {
    for (std::uint32_t q = 0; q < P; ++q) {
      ring_ch[q].resize(kp);
      bc_ch[q].resize(kp);
      const std::uint32_t sender = sched.ring_sender(q);
      for (std::uint32_t tph = 0; tph < kp; ++tph) {
        // A (q, tph) slot whose transfer count is zero (tph < k with a
        // single sweep) never receives — no channel needed.
        if (sched.phase_transfers(tph, sweeps) == 0) continue;
        const std::uint32_t pid = sched.owned_portion(q, tph);
        const std::uint32_t begin = sched.portion_begin(pid);
        const std::uint32_t end = sched.portion_end(pid);
        ring_ch[q][tph] = std::make_unique<earth::ReliableChannel>(
            m, sender, q, compute[q][tph],
            [&procs, q, begin, end, &shape](const std::vector<double>& pl) {
              const std::size_t len = end - begin;
              ER_ENSURES(pl.size() == len * shape.num_reduction_arrays);
              for (std::uint32_t a = 0; a < shape.num_reduction_arrays; ++a)
                std::copy(pl.begin() + a * len, pl.begin() + (a + 1) * len,
                          procs[q].arrays.reduction[a].begin() + begin);
            },
            "ring[" + std::to_string(sender) + "->" + std::to_string(q) +
                "][" + std::to_string(tph) + "]",
            opt.reliable_opt);
      }
      if (P > 1) {
        for (std::uint32_t pid = 0; pid < kp; ++pid) {
          const std::uint32_t owner = sched.final_owner(pid);
          if (owner == q) continue;
          const std::uint32_t begin = sched.portion_begin(pid);
          const std::uint32_t end = sched.portion_end(pid);
          bc_ch[q][pid] = std::make_unique<earth::ReliableChannel>(
              m, owner, q, channel_gate[q][owner],
              [&procs, q, begin, end,
               &shape](const std::vector<double>& pl) {
                const std::size_t len = end - begin;
                ER_ENSURES(pl.size() == len * shape.num_node_read_arrays);
                for (std::uint32_t a = 0; a < shape.num_node_read_arrays;
                     ++a)
                  std::copy(pl.begin() + a * len,
                            pl.begin() + (a + 1) * len,
                            procs[q].arrays.node_read[a].begin() + begin);
              },
              "bcast[" + std::to_string(owner) + "->" + std::to_string(q) +
                  "][" + std::to_string(pid) + "]",
              opt.reliable_opt);
        }
      }
    }
  }

  // Initial conditions: phase 0 has its predecessor, its portion, and (for
  // sweep 0) all replication signals satisfied by construction; phases
  // 1..k-1 start with their portions already local.
  for (std::uint32_t p = 0; p < P; ++p) {
    m.credit(compute[p][0], P > 1 ? 2 + (P - 1) : 2);
    for (std::uint32_t ph = 1; ph < opt.k && ph < kp; ++ph)
      m.credit(compute[p][ph], 1);
  }

  // Quiescence watchdog: if any message is lost (a fault without the
  // reliable transport, or a protocol bug), the machine drains early and
  // names the starved fibers instead of silently reporting a bogus
  // makespan alongside wrong results.
  for (std::uint32_t p = 0; p < P; ++p) {
    for (std::uint32_t ph = 0; ph < kp; ++ph)
      m.expect_activations(compute[p][ph], sweeps);
    if (P > 1) {
      for (std::uint32_t q = 0; q < P; ++q)
        if (q != p) m.expect_activations(channel_gate[p][q], sweeps);
    }
  }

  const Cycles t_total = m.run();

  // ---- results ---------------------------------------------------------
  result.total_cycles = t_total;
  result.inspector_cycles = t_inspector;
  result.machine = m.stats();
  if (opt.reliable) {
    for (const auto& row : ring_ch)
      for (const auto& ch : row)
        if (ch) result.reliable.add(ch->stats());
    for (const auto& row : bc_ch)
      for (const auto& ch : row)
        if (ch) result.reliable.add(ch->stats());
  }
  if (mcfg.trace) result.gantt = m.trace().render_gantt(P);
  result.phases_per_proc = kp;
  result.phase_iterations.reserve(static_cast<std::size_t>(P) * kp);
  for (std::uint32_t p = 0; p < P; ++p)
    for (const auto s : procs[p].insp.phase_sizes())
      result.phase_iterations.push_back(s);

  if (collect) {
    result.node_read.assign(shape.num_node_read_arrays,
                            std::vector<double>(shape.num_nodes, 0.0));
    result.node_read = procs[0].arrays.node_read;
    // Replication invariant: every processor holds identical node arrays
    // after the final broadcasts drain.
    for (std::uint32_t p = 1; p < P; ++p)
      for (std::uint32_t a = 0; a < shape.num_node_read_arrays; ++a)
        ER_ENSURES_MSG(procs[p].arrays.node_read[a] ==
                           procs[0].arrays.node_read[a],
                       "node-read replicas diverged");
  }

  // Every compute fiber must have fired exactly `sweeps` times.
  for (std::uint32_t p = 0; p < P; ++p)
    for (std::uint32_t ph = 0; ph < kp; ++ph)
      ER_ENSURES_MSG(m.fiber_activations(compute[p][ph]) == sweeps,
                     "phase fiber fired wrong number of times");

  ER_LOG(Debug) << "rotation engine: P=" << P << " k=" << opt.k
                << " cycles=" << t_total;
  return result;
}

}  // namespace earthred::core
