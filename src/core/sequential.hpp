// Sequential reference executors.
//
// These run the same kernels on a one-node machine in natural iteration
// order with direct (unredirected) references, charging the same
// per-operation cost model. They serve two purposes:
//   * numerical ground truth for validating the parallel engines;
//   * the sequential times from which the paper's absolute speedups are
//     computed (Sec. 5.3/5.4: "the sequential versions were timed on one
//     i860XP processor").
#pragma once

#include <cstdint>
#include <span>

#include "core/kernel.hpp"
#include "core/result.hpp"
#include "sparse/csr.hpp"

namespace earthred::core {

struct SequentialOptions {
  std::uint32_t sweeps = 1;
  earth::MachineConfig machine{};
  bool collect_results = true;
};

/// Runs `sweeps` time steps of the kernel on one simulated processor.
RunResult run_sequential_kernel(const PhasedKernel& kernel,
                                const SequentialOptions& opt);

/// Runs `sweeps` repetitions of y = A*x on one simulated processor using
/// the cache-friendly row-major CSR loop (per-row accumulator in a
/// register, one y store per row). result.reduction[0] holds y.
RunResult run_sequential_mvm(const sparse::CsrMatrix& A,
                             std::span<const double> x,
                             const SequentialOptions& opt);

}  // namespace earthred::core
