// Console table printer used by the benchmark harness to emit the rows and
// series of the paper's figures in an aligned, diffable text form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace earthred {

/// Column alignment within a Table.
enum class Align { Left, Right };

/// An aligned text table with a header row and optional title, rendered
/// with a separator rule under the header. Cell content is free-form text;
/// callers format numbers with fmt_f / fmt_group.
class Table {
 public:
  explicit Table(std::string title = {});

  /// Declares the header. Must be called before any add_row.
  void set_header(std::vector<std::string> header,
                  std::vector<Align> align = {});

  /// Appends a data row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal rule between row groups.
  void add_rule();

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table (title, header, rule, rows) to `os`.
  void print(std::ostream& os) const;

  /// Renders to a string (mostly for tests).
  std::string to_string() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<Row> rows_;
};

}  // namespace earthred
