#include "support/binio.hpp"

#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace earthred::support {

std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

std::uint64_t fast_hash64(const void* data, std::size_t size,
                          std::uint64_t seed) {
  // Four independent xor-multiply lanes over 8-byte words: the lanes have
  // no serial dependency between each other, so the multiplies pipeline
  // (~8x the throughput of the byte-serial fnv1a64 — this is what keeps
  // the plan-store checksum out of the warm-start critical path). Odd
  // multipliers -> the per-lane map is a bijection; the final fold and
  // avalanche mix every lane into every output bit.
  constexpr std::uint64_t kM0 = 0x9e3779b97f4a7c15ull;
  constexpr std::uint64_t kM1 = 0xc2b2ae3d27d4eb4full;
  constexpr std::uint64_t kM2 = 0x165667b19e3779f9ull;
  constexpr std::uint64_t kM3 = 0x27d4eb2f165667c5ull;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h0 = seed ^ kM0, h1 = seed ^ kM1, h2 = seed ^ kM2,
                h3 = seed ^ kM3;
  std::uint64_t w;
  while (size >= 32) {
    std::memcpy(&w, p, 8);
    h0 = (h0 ^ w) * kM0;
    std::memcpy(&w, p + 8, 8);
    h1 = (h1 ^ w) * kM1;
    std::memcpy(&w, p + 16, 8);
    h2 = (h2 ^ w) * kM2;
    std::memcpy(&w, p + 24, 8);
    h3 = (h3 ^ w) * kM3;
    p += 32;
    size -= 32;
  }
  while (size >= 8) {
    std::memcpy(&w, p, 8);
    h0 = (h0 ^ w) * kM0;
    p += 8;
    size -= 8;
  }
  if (size > 0) {
    w = 0;
    std::memcpy(&w, p, size);
    h1 = (h1 ^ (w | (std::uint64_t{size} << 56))) * kM1;
  }
  std::uint64_t h = h0;
  h = (h ^ h1) * kM0;
  h = (h ^ h2) * kM1;
  h = (h ^ h3) * kM2;
  h ^= h >> 32;
  h *= kM3;
  h ^= h >> 29;
  return h;
}

// ---- MappedFile ---------------------------------------------------------

std::shared_ptr<MappedFile> MappedFile::open(const std::string& path,
                                             std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    return nullptr;
  };
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return fail("open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return fail("fstat " + path);
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->size_ = static_cast<std::size_t>(st.st_size);
  if (file->size_ == 0) {
    ::close(fd);
    return file;
  }
  void* p = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (p != MAP_FAILED) {
    file->data_ = p;
    file->mapped_ = true;
    ::close(fd);  // the mapping survives the descriptor
    return file;
  }
  // Fallback: buffer the contents (e.g. filesystems without mmap).
  file->fallback_.resize(file->size_);
  std::size_t off = 0;
  while (off < file->size_) {
    const ssize_t n =
        ::pread(fd, file->fallback_.data() + off, file->size_ - off,
                static_cast<off_t>(off));
    if (n <= 0) {
      ::close(fd);
      return fail("read " + path);
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  file->data_ = file->fallback_.data();
  return file;
}

MappedFile::~MappedFile() {
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<void*>(data_), size_);
}

// ---- ByteWriter ---------------------------------------------------------

void ByteWriter::raw(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

void ByteWriter::u32_array(std::span<const std::uint32_t> v) {
  u64(v.size());
  raw(v.data(), v.size() * sizeof(std::uint32_t));
  if (v.size() % 2 != 0) u32(0);  // keep 8-byte alignment
}

// ---- ByteReader ---------------------------------------------------------

std::span<const std::uint32_t> ByteReader::u32_array() {
  const std::uint64_t count = u64();
  if (fail_) return {};
  const std::uint64_t padded = count + (count % 2);
  if (padded > (bytes_.size() - pos_) / sizeof(std::uint32_t) ||
      (reinterpret_cast<std::uintptr_t>(bytes_.data() + pos_) %
       alignof(std::uint32_t)) != 0) {
    fail_ = true;
    return {};
  }
  const auto* p =
      reinterpret_cast<const std::uint32_t*>(bytes_.data() + pos_);
  pos_ += static_cast<std::size_t>(padded) * sizeof(std::uint32_t);
  return {p, static_cast<std::size_t>(count)};
}

// ---- write_file_atomic --------------------------------------------------

bool write_file_atomic(const std::string& path,
                       std::span<const std::byte> bytes, std::string* error) {
  const auto fail = [&](const std::string& what, int fd) {
    if (error) *error = what + ": " + std::strerror(errno);
    if (fd >= 0) ::close(fd);
    return false;
  };
  std::string tmp = path + ".tmp.XXXXXX";
  const int fd = ::mkstemp(tmp.data());
  if (fd < 0) return fail("mkstemp " + tmp, -1);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      ::unlink(tmp.c_str());
      return fail("write " + tmp, fd);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return fail("fsync " + tmp, -1);
  }
  if (::fchmodat(AT_FDCWD, tmp.c_str(), 0644, 0) != 0) {
    // Non-fatal: mkstemp's 0600 only hides the cache entry from other
    // users; keep going.
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail("rename " + tmp + " -> " + path, -1);
  }
  return true;
}

}  // namespace earthred::support
