// String formatting helpers. GCC 12 ships without std::format, so the
// library carries a minimal printf-backed `strformat` plus the handful of
// numeric-to-string conveniences the bench tables need.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace earthred {

/// printf-style formatting into a std::string.
template <typename... Args>
std::string strformat(const char* fmt, Args&&... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  if (n <= 0) return {};
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

/// Fixed-precision double, e.g. fmt_f(3.14159, 2) == "3.14".
std::string fmt_f(double v, int precision = 2);

/// Thousands-separated integer, e.g. fmt_group(1853104) == "1,853,104".
std::string fmt_group(long long v);

/// Splits on a delimiter; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Left/right padding to a width (spaces); no-op if already wider.
std::string pad_left(std::string s, std::size_t width);
std::string pad_right(std::string s, std::size_t width);

}  // namespace earthred
