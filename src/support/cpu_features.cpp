#include "support/cpu_features.hpp"

#include <cstdint>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define EARTHRED_HAS_SYSCONF 1
#else
#define EARTHRED_HAS_SYSCONF 0
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <cpuid.h>
#define EARTHRED_HAS_CPUID 1
#else
#define EARTHRED_HAS_CPUID 0
#endif

#if defined(__linux__)
#include <sched.h>
#define EARTHRED_HAS_SCHED_GETAFFINITY 1
#else
#define EARTHRED_HAS_SCHED_GETAFFINITY 0
#endif

namespace earthred::support {

namespace {

#if EARTHRED_HAS_CPUID

// XGETBV with ECX=0 reads XCR0, the OS-controlled register that says which
// register state the kernel context-switches. Guarded by the OSXSAVE CPUID
// bit: executing xgetbv without it is #UD.
std::uint64_t read_xcr0() {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                   : "=a"(eax), "=d"(edx)
                   : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures detect() {
  CpuFeatures f;
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  f.osxsave = (ecx & (1u << 27)) != 0;
  if (f.osxsave) {
    const std::uint64_t xcr0 = read_xcr0();
    // Bits 1|2: XMM+YMM. Bits 5|6|7: opmask, ZMM-hi256, hi16-ZMM.
    f.os_ymm = (xcr0 & 0x6) == 0x6;
    f.os_zmm = f.os_ymm && (xcr0 & 0xe0) == 0xe0;
  }
  unsigned max_leaf = __get_cpuid_max(0, nullptr);
  if (max_leaf >= 7) {
    unsigned b = 0;
    unsigned c = 0;
    unsigned d = 0;
    unsigned a = 0;
    __cpuid_count(7, 0, a, b, c, d);
    f.avx2 = f.os_ymm && (b & (1u << 5)) != 0;
    f.avx512f = f.os_zmm && (b & (1u << 16)) != 0;
  }
  return f;
}

#else  // !EARTHRED_HAS_CPUID

CpuFeatures detect() { return {}; }

#endif

const CpuFeatures* g_forced = nullptr;

}  // namespace

const CpuFeatures& host_cpu_features() {
  static const CpuFeatures detected = detect();
  return g_forced ? *g_forced : detected;
}

void set_cpu_features_for_test(const CpuFeatures* forced) {
  g_forced = forced;
}

std::string to_string(const CpuFeatures& f) {
  std::string out;
  if (f.avx2) out += "avx2";
  if (f.avx512f) {
    if (!out.empty()) out += ' ';
    out += "avx512f";
  }
  if (out.empty()) return "none (scalar only)";
  return out;
}

namespace {

const CacheInfo* g_forced_cache = nullptr;

#if EARTHRED_HAS_CPUID
/// CPUID leaf 4 (Intel deterministic cache parameters; AMD mirrors it on
/// leaf 0x8000001d, probed as a fallback). Fills only levels sysconf left
/// at 0 so cgroup-aware numbers win when present.
void cpuid_cache_fill(CacheInfo& c) {
  const auto probe = [&](unsigned leaf) {
    for (unsigned sub = 0;; ++sub) {
      unsigned a = 0;
      unsigned b = 0;
      unsigned cx = 0;
      unsigned d = 0;
      __cpuid_count(leaf, sub, a, b, cx, d);
      const unsigned type = a & 0x1f;  // 0 = no more caches
      if (type == 0) break;
      const unsigned level = (a >> 5) & 0x7;
      const bool is_data = type == 1 || type == 3;  // data or unified
      const std::uint64_t line = (b & 0xfff) + 1;
      const std::uint64_t partitions = ((b >> 12) & 0x3ff) + 1;
      const std::uint64_t ways = ((b >> 22) & 0x3ff) + 1;
      const std::uint64_t sets = static_cast<std::uint64_t>(cx) + 1;
      const std::uint64_t bytes = line * partitions * ways * sets;
      if (!is_data || bytes == 0) continue;
      if (level == 1 && c.l1d_bytes == 0) c.l1d_bytes = bytes;
      if (level == 2 && c.l2_bytes == 0) c.l2_bytes = bytes;
      if (level >= 3 && c.llc_bytes == 0) c.llc_bytes = bytes;
      if (line != 0) c.line_bytes = static_cast<std::uint32_t>(line);
    }
  };
  if (__get_cpuid_max(0, nullptr) >= 4) probe(4);
  if (c.l1d_bytes == 0 && __get_cpuid_max(0x80000000, nullptr) >= 0x8000001d)
    probe(0x8000001d);
}
#endif

CacheInfo detect_cache() {
  CacheInfo c;
#if EARTHRED_HAS_SYSCONF
  const auto sc = [](int name) -> std::uint64_t {
    const long v = sysconf(name);
    return v > 0 ? static_cast<std::uint64_t>(v) : 0;
  };
#ifdef _SC_LEVEL1_DCACHE_SIZE
  c.l1d_bytes = sc(_SC_LEVEL1_DCACHE_SIZE);
#endif
#ifdef _SC_LEVEL2_CACHE_SIZE
  c.l2_bytes = sc(_SC_LEVEL2_CACHE_SIZE);
#endif
#ifdef _SC_LEVEL4_CACHE_SIZE
  c.llc_bytes = sc(_SC_LEVEL4_CACHE_SIZE);
#endif
#ifdef _SC_LEVEL3_CACHE_SIZE
  if (c.llc_bytes == 0) c.llc_bytes = sc(_SC_LEVEL3_CACHE_SIZE);
#endif
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
  if (const std::uint64_t line = sc(_SC_LEVEL1_DCACHE_LINESIZE); line != 0)
    c.line_bytes = static_cast<std::uint32_t>(line);
#endif
#endif  // EARTHRED_HAS_SYSCONF
#if EARTHRED_HAS_CPUID
  cpuid_cache_fill(c);
#endif
  return c;
}

std::string fmt_bytes(std::uint64_t b) {
  if (b == 0) return "?";
  if (b % (1024 * 1024) == 0)
    return std::to_string(b / (1024 * 1024)) + " MiB";
  if (b % 1024 == 0) return std::to_string(b / 1024) + " KiB";
  return std::to_string(b) + " B";
}

}  // namespace

const CacheInfo& host_cache_info() {
  static const CacheInfo detected = detect_cache();
  return g_forced_cache ? *g_forced_cache : detected;
}

void set_cache_info_for_test(const CacheInfo* forced) {
  g_forced_cache = forced;
}

std::string to_string(const CacheInfo& c) {
  return "L1d " + fmt_bytes(c.l1d_bytes) + ", L2 " + fmt_bytes(c.l2_bytes) +
         ", LLC " + fmt_bytes(c.llc_bytes) + ", line " +
         std::to_string(c.line_bytes) + " B";
}

unsigned hardware_threads() {
#if EARTHRED_HAS_SCHED_GETAFFINITY
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n >= 1) return static_cast<unsigned>(n);
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n >= 1 ? n : 1;
}

}  // namespace earthred::support
