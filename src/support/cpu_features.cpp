#include "support/cpu_features.hpp"

#include <cstdint>
#include <thread>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <cpuid.h>
#define EARTHRED_HAS_CPUID 1
#else
#define EARTHRED_HAS_CPUID 0
#endif

#if defined(__linux__)
#include <sched.h>
#define EARTHRED_HAS_SCHED_GETAFFINITY 1
#else
#define EARTHRED_HAS_SCHED_GETAFFINITY 0
#endif

namespace earthred::support {

namespace {

#if EARTHRED_HAS_CPUID

// XGETBV with ECX=0 reads XCR0, the OS-controlled register that says which
// register state the kernel context-switches. Guarded by the OSXSAVE CPUID
// bit: executing xgetbv without it is #UD.
std::uint64_t read_xcr0() {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                   : "=a"(eax), "=d"(edx)
                   : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures detect() {
  CpuFeatures f;
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  f.osxsave = (ecx & (1u << 27)) != 0;
  if (f.osxsave) {
    const std::uint64_t xcr0 = read_xcr0();
    // Bits 1|2: XMM+YMM. Bits 5|6|7: opmask, ZMM-hi256, hi16-ZMM.
    f.os_ymm = (xcr0 & 0x6) == 0x6;
    f.os_zmm = f.os_ymm && (xcr0 & 0xe0) == 0xe0;
  }
  unsigned max_leaf = __get_cpuid_max(0, nullptr);
  if (max_leaf >= 7) {
    unsigned b = 0;
    unsigned c = 0;
    unsigned d = 0;
    unsigned a = 0;
    __cpuid_count(7, 0, a, b, c, d);
    f.avx2 = f.os_ymm && (b & (1u << 5)) != 0;
    f.avx512f = f.os_zmm && (b & (1u << 16)) != 0;
  }
  return f;
}

#else  // !EARTHRED_HAS_CPUID

CpuFeatures detect() { return {}; }

#endif

const CpuFeatures* g_forced = nullptr;

}  // namespace

const CpuFeatures& host_cpu_features() {
  static const CpuFeatures detected = detect();
  return g_forced ? *g_forced : detected;
}

void set_cpu_features_for_test(const CpuFeatures* forced) {
  g_forced = forced;
}

std::string to_string(const CpuFeatures& f) {
  std::string out;
  if (f.avx2) out += "avx2";
  if (f.avx512f) {
    if (!out.empty()) out += ' ';
    out += "avx512f";
  }
  if (out.empty()) return "none (scalar only)";
  return out;
}

unsigned hardware_threads() {
#if EARTHRED_HAS_SCHED_GETAFFINITY
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n >= 1) return static_cast<unsigned>(n);
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n >= 1 ? n : 1;
}

}  // namespace earthred::support
