// Minimal JSON *emission* (no parsing): enough for benches and the
// service CLI to write machine-readable results next to their human
// tables. Output is compact single-line JSON; files are written in JSON
// Lines form (one object per line, append mode) so repeated runs and
// multi-figure benches accumulate records instead of clobbering them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace earthred {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string json_escape(const std::string& s);

/// Formats a double as JSON (finite: shortest round-trip; NaN/inf: null).
std::string json_number(double v);

/// Builds one JSON object incrementally. Values are emitted in insertion
/// order. Field names must be unique (not checked).
class JsonWriter {
 public:
  JsonWriter& field(const std::string& name, const std::string& value);
  JsonWriter& field(const std::string& name, const char* value);
  JsonWriter& field(const std::string& name, double value);
  JsonWriter& field(const std::string& name, std::uint64_t value);
  JsonWriter& field(const std::string& name, std::int64_t value);
  JsonWriter& field(const std::string& name, std::uint32_t value);
  JsonWriter& field(const std::string& name, bool value);
  /// Inserts `raw` verbatim — for nested objects/arrays.
  JsonWriter& raw_field(const std::string& name, const std::string& raw);

  /// The object so far, e.g. {"a":1,"b":"x"}.
  std::string str() const;

 private:
  JsonWriter& emit(const std::string& name, const std::string& raw);
  std::string body_;
};

/// Joins raw JSON values into an array: ["..", ..].
std::string json_array(const std::vector<std::string>& raw_elements);

/// Appends `json` plus a newline to `path` (creating it if needed);
/// throws check_error when the file cannot be written.
void append_json_line(const std::string& path, const std::string& json);

}  // namespace earthred
