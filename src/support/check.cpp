#include "support/check.hpp"

#include <sstream>

namespace earthred::detail {

namespace {
std::string compose(const char* kind, const char* cond, const char* file,
                    int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void fail_expects(const char* cond, const char* file, int line,
                  const std::string& msg) {
  throw precondition_error(compose("precondition", cond, file, line, msg));
}

void fail_ensures(const char* cond, const char* file, int line,
                  const std::string& msg) {
  throw internal_error(compose("invariant", cond, file, line, msg));
}

void fail_check(const char* cond, const char* file, int line,
                const std::string& msg) {
  throw check_error(compose("check", cond, file, line, msg));
}

}  // namespace earthred::detail
