#include "support/prng.hpp"

#include <cmath>

#include "support/check.hpp"

namespace earthred {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= s_[static_cast<std::size_t>(i)];
      }
      (*this)();
    }
  }
  s_ = acc;
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(width));
}

bool Xoshiro256::chance(double p) noexcept { return uniform() < p; }

NasRandlc::NasRandlc(double seed, double a) noexcept : x_(seed), a_(a) {}

double NasRandlc::next() noexcept {
  // Exact 46-bit LCG following the NPB reference implementation: split both
  // multiplier and state into 23-bit halves and recombine mod 2^46.
  constexpr double r23 = 0x1.0p-23, t23 = 0x1.0p23;
  constexpr double r46 = 0x1.0p-46, t46 = 0x1.0p46;

  const double t1 = r23 * a_;
  const double a1 = std::trunc(t1);
  const double a2 = a_ - t23 * a1;

  const double t1b = r23 * x_;
  const double x1 = std::trunc(t1b);
  const double x2 = x_ - t23 * x1;

  const double t1c = a1 * x2 + a2 * x1;
  const double t2 = std::trunc(r23 * t1c);
  const double z = t1c - t23 * t2;
  const double t3 = t23 * z + a2 * x2;
  const double t4 = std::trunc(r46 * t3);
  x_ = t3 - t46 * t4;
  return r46 * x_;
}

}  // namespace earthred
