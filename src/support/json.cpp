#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "support/check.hpp"

namespace earthred {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

JsonWriter& JsonWriter::emit(const std::string& name,
                             const std::string& raw) {
  if (!body_.empty()) body_ += ',';
  body_ += '"' + json_escape(name) + "\":" + raw;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& name,
                              const std::string& value) {
  return emit(name, '"' + json_escape(value) + '"');
}

JsonWriter& JsonWriter::field(const std::string& name, const char* value) {
  return field(name, std::string(value));
}

JsonWriter& JsonWriter::field(const std::string& name, double value) {
  return emit(name, json_number(value));
}

JsonWriter& JsonWriter::field(const std::string& name,
                              std::uint64_t value) {
  return emit(name, std::to_string(value));
}

JsonWriter& JsonWriter::field(const std::string& name, std::int64_t value) {
  return emit(name, std::to_string(value));
}

JsonWriter& JsonWriter::field(const std::string& name,
                              std::uint32_t value) {
  return emit(name, std::to_string(value));
}

JsonWriter& JsonWriter::field(const std::string& name, bool value) {
  return emit(name, value ? "true" : "false");
}

JsonWriter& JsonWriter::raw_field(const std::string& name,
                                  const std::string& raw) {
  return emit(name, raw);
}

std::string JsonWriter::str() const { return "{" + body_ + "}"; }

std::string json_array(const std::vector<std::string>& raw_elements) {
  std::string out = "[";
  for (std::size_t i = 0; i < raw_elements.size(); ++i) {
    if (i) out += ',';
    out += raw_elements[i];
  }
  return out + "]";
}

void append_json_line(const std::string& path, const std::string& json) {
  std::ofstream os(path, std::ios::app);
  ER_CHECK_MSG(os.good(), "cannot open '" + path + "' for writing");
  os << json << '\n';
  ER_CHECK_MSG(os.good(), "write to '" + path + "' failed");
}

}  // namespace earthred
