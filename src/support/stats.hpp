// Small statistics helpers used by the benchmark harness and by the
// load-balance analyses (Sec. 5.4.3 of the paper examines the number of
// iterations assigned to each phase on each processor).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace earthred {

/// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Summary of a sample set, including order statistics.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

/// Computes a Summary; copies and sorts the data internally.
Summary summarize(std::span<const double> xs);

/// Load-imbalance factor of a work distribution: max / mean.
/// 1.0 is perfectly balanced; returns 0 for empty or all-zero input.
double imbalance_factor(std::span<const std::uint64_t> work);

/// Coefficient of variation (stddev / mean) of a work distribution.
double coefficient_of_variation(std::span<const std::uint64_t> work);

/// Interpolated quantile q in [0,1] of already-sorted data.
double quantile_sorted(std::span<const double> sorted, double q);

}  // namespace earthred
