#include "support/str.hpp"

#include <algorithm>
#include <cctype>

namespace earthred {

std::string fmt_f(double v, int precision) {
  return strformat("%.*f", precision, v);
}

std::string fmt_group(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  out.append(digits, 0, lead);
  for (std::size_t i = lead; i < digits.size(); i += 3) {
    out.push_back(',');
    out.append(digits, i, 3);
  }
  if (v < 0) out.insert(out.begin(), '-');
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string pad_left(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(s.begin(), width - s.size(), ' ');
  return s;
}

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace earthred
