// Leveled logging to stderr. Off by default above Warn so library code can
// narrate (simulator phase transitions, inspector statistics) without
// polluting bench output; tests and examples raise the level explicitly.
#pragma once

#include <sstream>
#include <string>

namespace earthred {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: ER_LOG(Info) << "built " << n << " fibers";
#define ER_LOG(levelname)                                                  \
  for (bool er_log_once =                                                  \
           ::earthred::log_level() <= ::earthred::LogLevel::levelname;     \
       er_log_once; er_log_once = false)                                   \
  ::earthred::detail::LogLine(::earthred::LogLevel::levelname)

namespace detail {
/// Accumulates one log line and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace earthred
