// Minimal command-line option parsing for examples and benches.
//
// Accepts `--key=value` and bare `--flag` forms; positional arguments are
// collected in order. Unknown keys are retained so callers can reject or
// ignore them explicitly. (The ambiguous `--key value` form is not
// supported: it cannot be distinguished from a flag followed by a
// positional argument.)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace earthred {

/// Parsed command line. Typical use:
///   Options opt(argc, argv);
///   int procs = opt.get_int("procs", 32);
class Options {
 public:
  Options() = default;
  Options(int argc, const char* const* argv);

  /// True if --key was present (with or without a value).
  bool has(const std::string& key) const;

  /// String value of --key, or `fallback` if absent.
  std::string get(const std::string& key, const std::string& fallback = {}) const;

  /// Integer value of --key; throws check_error on a malformed number.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;

  /// Double value of --key; throws check_error on a malformed number.
  double get_double(const std::string& key, double fallback) const;

  /// Boolean: bare flag or explicit true/false/1/0/yes/no.
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated integer list, e.g. --procs=1,2,4,8.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         std::vector<std::int64_t> fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& keyed() const { return keyed_; }

 private:
  std::map<std::string, std::string> keyed_;
  std::vector<std::string> positional_;
};

}  // namespace earthred
