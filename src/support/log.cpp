#include "support/log.hpp"

#include <atomic>
#include <cstdio>

namespace earthred {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace earthred
