#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/check.hpp"
#include "support/str.hpp"

namespace earthred {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header,
                       std::vector<Align> align) {
  ER_EXPECTS(rows_.empty());
  ER_EXPECTS(align.empty() || align.size() == header.size());
  header_ = std::move(header);
  if (align.empty()) {
    align_.assign(header_.size(), Align::Right);
    if (!align_.empty()) align_[0] = Align::Left;
  } else {
    align_ = std::move(align);
  }
}

void Table::add_row(std::vector<std::string> row) {
  ER_EXPECTS_MSG(row.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_rule() { rows_.push_back(Row{{}, true}); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const Row& r : rows_) {
    if (r.rule) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      width[c] = std::max(width[c], r.cells[c].size());
  }

  std::size_t total = header_.size() >= 1 ? 2 * header_.size() + 1 : 0;
  for (auto w : width) total += w;

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit_rule = [&] { os << std::string(total, '-') << '\n'; };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::string cell = cells[c];
      cell = (align_[c] == Align::Left) ? pad_right(std::move(cell), width[c])
                                        : pad_left(std::move(cell), width[c]);
      os << ' ' << cell << " |";
    }
    os << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const Row& r : rows_) {
    if (r.rule) {
      emit_rule();
    } else {
      emit_row(r.cells);
    }
  }
  emit_rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace earthred
