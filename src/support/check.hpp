// Precondition / invariant checking for the earthred library.
//
// The library distinguishes three classes of failure:
//   * ER_EXPECTS  — caller violated a documented precondition.
//   * ER_ENSURES  — the library itself failed to establish a postcondition
//                   (an internal bug).
//   * ER_CHECK    — a runtime condition that may legitimately fail on bad
//                   input data (e.g. a malformed mesh file).
//
// All three throw; they never abort, so a host application can recover and
// tests can assert on the failure. The what() string carries file:line and
// the stringified condition.
#pragma once

#include <stdexcept>
#include <string>

namespace earthred {

/// Thrown when a caller violates a documented precondition.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when the library detects an internal invariant violation.
class internal_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown on invalid runtime data (bad file, inconsistent sizes, ...).
class check_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when static verification (the plan verifier, DSL legality
/// checks run in throwing contexts) rejects an artifact. A check_error
/// subclass so existing catch sites keep working, but distinguishable —
/// the service maps it to JobState::Rejected rather than Failed.
class verify_error : public check_error {
 public:
  using check_error::check_error;
};

namespace detail {
[[noreturn]] void fail_expects(const char* cond, const char* file, int line,
                               const std::string& msg);
[[noreturn]] void fail_ensures(const char* cond, const char* file, int line,
                               const std::string& msg);
[[noreturn]] void fail_check(const char* cond, const char* file, int line,
                             const std::string& msg);
}  // namespace detail

}  // namespace earthred

#define ER_EXPECTS(cond)                                                    \
  do {                                                                      \
    if (!(cond))                                                            \
      ::earthred::detail::fail_expects(#cond, __FILE__, __LINE__, {});      \
  } while (0)

#define ER_EXPECTS_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond))                                                            \
      ::earthred::detail::fail_expects(#cond, __FILE__, __LINE__, (msg));   \
  } while (0)

#define ER_ENSURES(cond)                                                    \
  do {                                                                      \
    if (!(cond))                                                            \
      ::earthred::detail::fail_ensures(#cond, __FILE__, __LINE__, {});      \
  } while (0)

#define ER_ENSURES_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond))                                                            \
      ::earthred::detail::fail_ensures(#cond, __FILE__, __LINE__, (msg));   \
  } while (0)

#define ER_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond))                                                            \
      ::earthred::detail::fail_check(#cond, __FILE__, __LINE__, {});        \
  } while (0)

#define ER_CHECK_MSG(cond, msg)                                             \
  do {                                                                      \
    if (!(cond))                                                            \
      ::earthred::detail::fail_check(#cond, __FILE__, __LINE__, (msg));     \
  } while (0)

/// Marks unreachable code paths; throws internal_error if ever executed.
#define ER_UNREACHABLE(msg)                                                 \
  ::earthred::detail::fail_ensures("unreachable", __FILE__, __LINE__, (msg))
