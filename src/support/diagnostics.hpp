// Structured diagnostics shared by the static-analysis layers: the DSL
// compiler's legality checks (src/compiler/check.cpp) and the
// ExecutionPlan/rotation invariant verifier (src/inspector/plan_verifier.cpp).
//
// A Diagnostic carries a severity (error/warning/note), an optional stable
// code ("E-RED-READ", "E-PLAN-PHASE-OWNER", ...) that tools and golden
// tests can key on, a source position, and — when the sink has been given
// the source text — the offending line rendered as a snippet with a caret.
// Sinks collect rather than throw so callers can report several problems
// per run; only errors make has_errors() true, warnings and notes flow
// through to the caller.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace earthred {

enum class Severity : std::uint8_t { Error, Warning, Note };

inline const char* to_string(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "?";
}

struct Diagnostic {
  Severity severity = Severity::Error;
  /// Stable machine-readable code ("E-RED-READ"); empty for legacy
  /// uncoded reports.
  std::string code;
  std::uint32_t line = 0;
  std::uint32_t column = 0;
  std::string message;
  /// The source line the diagnostic points at (filled by the sink when it
  /// has the source text; empty otherwise, e.g. for plan diagnostics).
  std::string snippet;

  /// "error[E-RED-READ]" / "warning" — severity plus the code if any.
  std::string label() const {
    std::string out = earthred::to_string(severity);
    if (!code.empty()) {
      out += '[';
      out += code;
      out += ']';
    }
    return out;
  }

  /// One-line form: "3:5: error[E-RED-READ]: message". The golden tests
  /// compare this rendering, so it must stay deterministic.
  std::string header() const {
    return std::to_string(line) + ":" + std::to_string(column) + ": " +
           label() + ": " + message;
  }

  /// Full rendering; appends the source snippet and a caret when present.
  std::string to_string() const {
    std::string out = header();
    if (!snippet.empty()) {
      out += "\n    | ";
      out += snippet;
      out += "\n    | ";
      if (column > 0) out += std::string(column - 1, ' ');
      out += '^';
    }
    return out;
  }
};

class DiagnosticSink {
 public:
  /// Gives the sink the source text so subsequent diagnostics carry line
  /// snippets. Lines are copied; the caller's buffer may go away.
  void attach_source(std::string_view source) {
    source_lines_.clear();
    std::size_t start = 0;
    while (start <= source.size()) {
      const std::size_t nl = source.find('\n', start);
      const std::size_t end = nl == std::string_view::npos ? source.size() : nl;
      source_lines_.emplace_back(source.substr(start, end - start));
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
  }

  void report(Severity severity, std::uint32_t line, std::uint32_t column,
              std::string code, std::string msg) {
    Diagnostic d;
    d.severity = severity;
    d.code = std::move(code);
    d.line = line;
    d.column = column;
    d.message = std::move(msg);
    if (line >= 1 && line <= source_lines_.size())
      d.snippet = source_lines_[line - 1];
    if (severity == Severity::Error) ++errors_;
    diags_.push_back(std::move(d));
  }

  /// Legacy uncoded form (parser/lexer call sites predating codes).
  void error(std::uint32_t line, std::uint32_t column, std::string msg) {
    report(Severity::Error, line, column, {}, std::move(msg));
  }
  void error(std::uint32_t line, std::uint32_t column, std::string code,
             std::string msg) {
    report(Severity::Error, line, column, std::move(code), std::move(msg));
  }
  void warning(std::uint32_t line, std::uint32_t column, std::string code,
               std::string msg) {
    report(Severity::Warning, line, column, std::move(code), std::move(msg));
  }
  void note(std::uint32_t line, std::uint32_t column, std::string code,
            std::string msg) {
    report(Severity::Note, line, column, std::move(code), std::move(msg));
  }

  /// True when at least one *error* was reported; warnings and notes do
  /// not fail a compile.
  bool has_errors() const noexcept { return errors_ > 0; }
  std::size_t error_count() const noexcept { return errors_; }
  std::size_t warning_count() const noexcept {
    std::size_t n = 0;
    for (const Diagnostic& d : diags_)
      if (d.severity == Severity::Warning) ++n;
    return n;
  }
  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  std::string summary() const {
    std::string out;
    for (const Diagnostic& d : diags_) {
      out += d.to_string();
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<Diagnostic> diags_;
  std::vector<std::string> source_lines_;
  std::size_t errors_ = 0;
};

}  // namespace earthred
