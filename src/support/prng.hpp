// Pseudo-random number generation for workload synthesis.
//
// Two families:
//   * xoshiro256** — the library's general-purpose generator (fast, good
//     statistical quality, splittable via jump()), used for meshes,
//     molecular layouts, and property-test inputs.
//   * NasRandlc    — a bit-faithful reimplementation of the NAS Parallel
//     Benchmarks `randlc` 48-bit linear congruential generator, used by the
//     NAS-CG `makea` sparse-matrix construction so that the class W/A/B
//     matrices have the same statistical structure the paper used.
#pragma once

#include <array>
#include <cstdint>

namespace earthred {

/// SplitMix64: seeds other generators from a single 64-bit value.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9d2c5680u) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Advances 2^128 steps; yields an independent stream for parallel use.
  void jump() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Unbiased uniform integer in [0, n) for n > 0 (Lemire rejection).
  std::uint64_t below(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// NAS Parallel Benchmarks `randlc`: x_{k+1} = a * x_k mod 2^46, returning
/// x_{k+1} * 2^-46. All arithmetic is done in exact double-width pieces as
/// in the reference Fortran, so sequences match the NPB reference.
class NasRandlc {
 public:
  /// NPB standard multiplier 5^13.
  static constexpr double kDefaultA = 1220703125.0;

  explicit NasRandlc(double seed = 314159265.0,
                     double a = kDefaultA) noexcept;

  /// Returns the next uniform value in (0, 1) and advances the state.
  double next() noexcept;

  /// Current raw state x (an integer value stored in a double).
  double state() const noexcept { return x_; }

 private:
  double x_;
  double a_;
};

}  // namespace earthred
