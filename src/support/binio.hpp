// Binary file primitives for the persistent plan store.
//
// Three small pieces, deliberately separated from the plan format itself
// (core/plan_io.hpp) so they stay reusable and testable in isolation:
//
//   * MappedFile — read-only mmap of a whole file with RAII unmap, plus a
//     transparent read(2) fallback for filesystems where mmap fails. The
//     zero-copy warm start hinges on this: loaded plans view the mapping
//     instead of copying it, and the mapping is kept alive by a
//     shared_ptr<MappedFile> stored in the plan.
//   * ByteReader — bounds-checked little-endian cursor over a mapped (or
//     in-memory) byte range. Never throws on malformed input: any
//     overrun sets a sticky fail flag and subsequent reads return zeros,
//     so format parsers can probe freely and check once.
//   * ByteWriter — the matching append-only encoder.
//   * fnv1a64 — byte-serial FNV-1a (same function the PlanCache uses for
//     content hashing), for small ranges.
//   * fast_hash64 — the plan-payload checksum: a word-parallel
//     xor-multiply hash ~8x faster than fnv1a64, so checksumming a
//     megabyte-class plan file stays off the warm-start critical path.
//
// All integers are encoded little-endian. Files written on a big-endian
// host would carry a different endian tag in the plan header and be
// rejected on load (E-STORE-ENDIAN) rather than misread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace earthred::support {

/// FNV-1a over a byte range; `seed` chains multiple ranges.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 1469598103934665603ull);

/// Word-parallel 64-bit hash (four independent xor-multiply lanes + final
/// avalanche). Not FNV-compatible; used where throughput matters — the
/// plan file payload checksum.
std::uint64_t fast_hash64(const void* data, std::size_t size,
                          std::uint64_t seed = 1469598103934665603ull);

/// Whole-file read-only mapping. On platforms or filesystems where mmap
/// is unavailable the contents are read into an owned buffer instead —
/// callers see the same span either way (they only lose the zero-copy
/// property, never correctness).
class MappedFile {
 public:
  /// Maps `path`; returns nullptr (with `error` set) if the file cannot
  /// be opened or read. An empty file maps successfully to an empty span.
  static std::shared_ptr<MappedFile> open(const std::string& path,
                                          std::string* error = nullptr);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::byte> bytes() const noexcept {
    return {static_cast<const std::byte*>(data_), size_};
  }
  std::size_t size() const noexcept { return size_; }
  /// True when the contents are a real mmap (zero-copy), false when the
  /// read(2) fallback buffered them.
  bool mapped() const noexcept { return mapped_; }

 private:
  MappedFile() = default;
  const void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> fallback_;
};

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  /// Length-prefixed u32 array, zero-padded to an 8-byte boundary so the
  /// payload keeps every array 8-aligned (mmap adoption needs aligned
  /// u32 views; padding keeps the following u64 fields aligned too).
  void u32_array(std::span<const std::uint32_t> v);
  void raw(const void* p, std::size_t n);

  std::span<const std::byte> bytes() const noexcept { return buf_; }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian cursor. Reads past the end set `fail()`
/// and yield zeros / empty spans; the cursor never moves past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return scalar<std::uint8_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  double f64() { return scalar<double>(); }
  /// Copies `n` raw bytes into `dst`. On overrun nothing is copied, the
  /// fail flag is set, and false is returned (wire strings need this; the
  /// aligned u32_array path is unsuitable for byte payloads).
  bool raw(void* dst, std::size_t n) {
    if (fail_ || bytes_.size() - pos_ < n) {
      fail_ = true;
      return false;
    }
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  /// Counterpart of ByteWriter::u32_array. The returned span aliases the
  /// underlying bytes (this is the zero-copy handoff); it is empty — and
  /// fail() is set — on overrun, misalignment, or an oversized count.
  std::span<const std::uint32_t> u32_array();

  bool fail() const noexcept { return fail_; }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  template <typename T>
  T scalar() {
    T v{};
    if (fail_ || bytes_.size() - pos_ < sizeof(T)) {
      fail_ = true;
      return v;
    }
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory, fsync'd, then rename(2) over the target — readers only ever
/// observe a complete file. Returns false (with `error` set) on failure.
bool write_file_atomic(const std::string& path,
                       std::span<const std::byte> bytes,
                       std::string* error = nullptr);

}  // namespace earthred::support
