#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace earthred {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double nt = n1 + n2;
  mean_ += delta * n2 / nt;
  m2_ += other.m2_ + delta * delta * n1 * n2 / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) {
  ER_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  RunningStats rs;
  for (double x : v) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = v.front();
  s.max = v.back();
  s.p50 = quantile_sorted(v, 0.5);
  s.p90 = quantile_sorted(v, 0.9);
  return s;
}

double imbalance_factor(std::span<const std::uint64_t> work) {
  if (work.empty()) return 0.0;
  std::uint64_t maxw = 0, total = 0;
  for (auto w : work) {
    maxw = std::max(maxw, w);
    total += w;
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / static_cast<double>(work.size());
  return static_cast<double>(maxw) / mean;
}

double coefficient_of_variation(std::span<const std::uint64_t> work) {
  RunningStats rs;
  for (auto w : work) rs.add(static_cast<double>(w));
  return rs.mean() > 0.0 ? rs.stddev() / rs.mean() : 0.0;
}

}  // namespace earthred
