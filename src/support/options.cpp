#include "support/options.hpp"

#include <cstdlib>

#include "support/check.hpp"
#include "support/str.hpp"

namespace earthred {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      keyed_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      keyed_[arg] = "";
    }
  }
}

bool Options::has(const std::string& key) const {
  return keyed_.count(key) != 0;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = keyed_.find(key);
  return it == keyed_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = keyed_.find(key);
  if (it == keyed_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  ER_CHECK_MSG(end && *end == '\0', "malformed integer for --" + key);
  return v;
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = keyed_.find(key);
  if (it == keyed_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  ER_CHECK_MSG(end && *end == '\0', "malformed double for --" + key);
  return v;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = keyed_.find(key);
  if (it == keyed_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  throw check_error("malformed boolean for --" + key);
}

std::vector<std::int64_t> Options::get_int_list(
    const std::string& key, std::vector<std::int64_t> fallback) const {
  const auto it = keyed_.find(key);
  if (it == keyed_.end() || it->second.empty()) return fallback;
  std::vector<std::int64_t> out;
  for (const std::string& part : split(it->second, ',')) {
    char* end = nullptr;
    const long long v = std::strtoll(part.c_str(), &end, 10);
    ER_CHECK_MSG(end && *end == '\0' && !part.empty(),
                 "malformed integer list for --" + key);
    out.push_back(v);
  }
  return out;
}

}  // namespace earthred
