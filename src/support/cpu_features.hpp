#pragma once

// Runtime CPU feature detection (CPUID + XGETBV) for the compute-backend
// dispatch layer, plus a robust hardware-thread count that respects the
// process affinity mask (containers and `taskset` runs frequently expose
// fewer CPUs than the machine has online).

#include <cstdint>
#include <string>

namespace earthred::support {

/// SIMD-relevant features of the host, as observed at process start.
///
/// `avx2` / `avx512f` are only reported true when the OS has also enabled
/// the corresponding register state via XSAVE (XCR0 bits), so a true flag
/// means the instructions are actually safe to execute.
struct CpuFeatures {
  bool osxsave = false;   ///< OS uses XSAVE/XGETBV at all.
  bool os_ymm = false;    ///< XCR0 enables XMM+YMM state (AVX usable).
  bool os_zmm = false;    ///< XCR0 enables opmask+ZMM state (AVX-512 usable).
  bool avx2 = false;      ///< CPU has AVX2 and the OS saves YMM state.
  bool avx512f = false;   ///< CPU has AVX-512F and the OS saves ZMM state.
};

/// Detected features of this host, probed once and cached.
const CpuFeatures& host_cpu_features();

/// Human-readable summary, e.g. "avx2 avx512f" or "none (scalar only)".
std::string to_string(const CpuFeatures& f);

/// Test-only override for `host_cpu_features()`: pass a value to force a
/// specific feature set (e.g. a host without AVX-512), or `nullptr` to
/// restore real detection. Not thread-safe; call before spawning workers.
void set_cpu_features_for_test(const CpuFeatures* forced);

/// Number of hardware threads available to *this process*: the CPU
/// affinity mask population count when available, else
/// `std::thread::hardware_concurrency()`, and never less than 1.
unsigned hardware_threads();

/// Detected cache geometry. Sizes are bytes; 0 means the level could not
/// be detected (callers fall back to conservative defaults). `line_bytes`
/// is never 0 — an undetectable line size reports the x86 default of 64.
struct CacheInfo {
  std::uint64_t l1d_bytes = 0;  ///< per-core L1 data cache
  std::uint64_t l2_bytes = 0;   ///< per-core (or per-CCX-slice) L2
  std::uint64_t llc_bytes = 0;  ///< last-level cache (shared)
  std::uint32_t line_bytes = 64;
};

/// Detected cache geometry of this host, probed once and cached. Probes
/// sysconf(_SC_LEVEL*_CACHE_SIZE) first (respects cgroup-visible
/// topology), then CPUID leaf 4 on x86. Undetectable levels stay 0.
const CacheInfo& host_cache_info();

/// Human-readable summary, e.g. "L1d 32 KiB, L2 1 MiB, LLC 32 MiB, line 64 B".
std::string to_string(const CacheInfo& c);

/// Test-only override for `host_cache_info()`, mirroring
/// `set_cpu_features_for_test`. Not thread-safe; call before workers.
void set_cache_info_for_test(const CacheInfo* forced);

}  // namespace earthred::support
