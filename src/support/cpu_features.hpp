#pragma once

// Runtime CPU feature detection (CPUID + XGETBV) for the compute-backend
// dispatch layer, plus a robust hardware-thread count that respects the
// process affinity mask (containers and `taskset` runs frequently expose
// fewer CPUs than the machine has online).

#include <string>

namespace earthred::support {

/// SIMD-relevant features of the host, as observed at process start.
///
/// `avx2` / `avx512f` are only reported true when the OS has also enabled
/// the corresponding register state via XSAVE (XCR0 bits), so a true flag
/// means the instructions are actually safe to execute.
struct CpuFeatures {
  bool osxsave = false;   ///< OS uses XSAVE/XGETBV at all.
  bool os_ymm = false;    ///< XCR0 enables XMM+YMM state (AVX usable).
  bool os_zmm = false;    ///< XCR0 enables opmask+ZMM state (AVX-512 usable).
  bool avx2 = false;      ///< CPU has AVX2 and the OS saves YMM state.
  bool avx512f = false;   ///< CPU has AVX-512F and the OS saves ZMM state.
};

/// Detected features of this host, probed once and cached.
const CpuFeatures& host_cpu_features();

/// Human-readable summary, e.g. "avx2 avx512f" or "none (scalar only)".
std::string to_string(const CpuFeatures& f);

/// Test-only override for `host_cpu_features()`: pass a value to force a
/// specific feature set (e.g. a host without AVX-512), or `nullptr` to
/// restore real detection. Not thread-safe; call before spawning workers.
void set_cpu_features_for_test(const CpuFeatures* forced);

/// Number of hardware threads available to *this process*: the CPU
/// affinity mask population count when available, else
/// `std::thread::hardware_concurrency()`, and never less than 1.
unsigned hardware_threads();

}  // namespace earthred::support
