#include "earth/cache.hpp"

#include <bit>

#include "support/check.hpp"

namespace earthred::earth {

CacheModel::CacheModel(const CacheConfig& cfg) : enabled_(cfg.enabled) {
  ER_EXPECTS(cfg.line_bytes >= 4 && std::has_single_bit(cfg.line_bytes));
  ER_EXPECTS(cfg.ways >= 1);
  ER_EXPECTS(cfg.size_bytes >= cfg.line_bytes * cfg.ways);
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg.line_bytes));
  ways_ = cfg.ways;
  const std::uint32_t num_lines = cfg.size_bytes / cfg.line_bytes;
  num_sets_ = num_lines / cfg.ways;
  ER_EXPECTS_MSG(num_sets_ >= 1 && std::has_single_bit(num_sets_),
                 "cache size / (line * ways) must be a power of two");
  lines_.assign(static_cast<std::size_t>(num_sets_) * ways_, Line{});
}

bool CacheModel::access(std::uint64_t addr) noexcept {
  if (!enabled_) {
    ++hits_;
    return true;
  }
  const std::uint64_t line_addr = addr >> line_shift_;
  const std::uint64_t set = line_addr & (num_sets_ - 1);
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  ++tick_;

  Line* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& ln = base[w];
    if (ln.tag == line_addr) {
      ln.lru = tick_;
      ++hits_;
      return true;
    }
    if (ln.lru < victim->lru) victim = &ln;
  }
  victim->tag = line_addr;
  victim->lru = tick_;
  ++misses_;
  return false;
}

void CacheModel::clear() noexcept {
  for (Line& ln : lines_) ln = Line{};
  tick_ = 0;
}

}  // namespace earthred::earth
