// Discrete-event simulator of an EARTH-style multithreaded machine.
//
// Machine model (Sec. 5.2 of the paper):
//   * `num_nodes` nodes; each node pairs an Execution Unit (EU) running
//     non-preemptive fibers from a FIFO Ready Queue with a Synchronization
//     Unit (SU) processing sync/communication events from an Event Queue;
//   * fibers fire when their sync slot counts down to zero (dataflow-like
//     local synchronization — no global barriers);
//   * EARTH operations (sync signals, data sends) are split-phase: issued
//     cheaply by the EU, completed asynchronously by SU + network;
//   * the network charges a per-message latency plus a bandwidth term, and
//     serializes each node's outgoing port.
//
// The simulation is deterministic: events at equal times are processed in
// insertion order. Bodies of fibers execute host-side at their dispatch
// time, so all state mutation follows the simulated partial order.
//
// Typical lifecycle:
//   EarthMachine m(cfg);
//   auto f = m.add_fiber(node, /*sync_count=*/2, body, "compute[0][3]");
//   m.credit(f);            // initial-condition signals
//   Cycles makespan = m.run();
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "earth/cache.hpp"
#include "earth/fiber.hpp"
#include "earth/stats.hpp"
#include "earth/trace.hpp"
#include "earth/types.hpp"
#include "support/prng.hpp"

namespace earthred::earth {

class EarthMachine {
 public:
  explicit EarthMachine(MachineConfig cfg);

  EarthMachine(const EarthMachine&) = delete;
  EarthMachine& operator=(const EarthMachine&) = delete;

  const MachineConfig& config() const noexcept { return cfg_; }
  std::uint32_t num_nodes() const noexcept { return cfg_.num_nodes; }

  /// Registers a fiber on `node` whose slot must receive `sync_count`
  /// signals per activation. `sync_count == 0` means the fiber can only be
  /// activated via credit(). May not be called while run() is executing.
  FiberId add_fiber(NodeId node, std::uint32_t sync_count, FiberFn fn,
                    std::string name = {});

  /// Applies `n` pre-run signals to `fiber`'s slot (initial conditions —
  /// e.g. "the first k portions are already local"). If the slot reaches
  /// zero the fiber is made ready at time 0.
  void credit(FiberId fiber, std::uint32_t n = 1);

  /// Declares that `fiber` must have completed `total` activations by the
  /// time the event queue next drains. When run() ends with any declared
  /// fiber short of its total, a check_error names every stuck fiber and
  /// the state of its sync slot — the quiescence watchdog that turns a
  /// lost message into a diagnostic instead of a silently bogus makespan.
  /// Re-declaring a fiber replaces its expectation.
  void expect_activations(FiberId fiber, std::uint64_t total);

  /// True while the currently-executing deliver closure belongs to a
  /// message that a corrupt fault damaged in flight. Receivers that stage
  /// payloads (e.g. ReliableChannel) consult this to model the damage;
  /// closures that ignore it receive the payload intact.
  bool delivery_corrupted() const noexcept { return delivering_corrupted_; }

  /// Runs until no events remain; returns the makespan in cycles.
  /// May be called again after adding more credits/fibers; simulated time
  /// continues monotonically.
  Cycles run();

  /// Simulated time of the most recently processed event.
  Cycles now() const noexcept { return stats_.makespan; }

  const MachineStats& stats() const noexcept { return stats_; }
  const NodeStats& node_stats(NodeId n) const { return stats_.node.at(n); }
  /// The recorded trace (empty unless config().trace).
  const Trace& trace() const noexcept { return trace_; }
  const std::string& fiber_name(FiberId f) const;
  NodeId fiber_node(FiberId f) const;
  /// Total number of activations of `f` so far.
  std::uint64_t fiber_activations(FiberId f) const;

 private:
  friend class FiberContext;

  struct Fiber {
    NodeId node = 0;
    std::uint32_t sync_count = 0;  // reset value
    std::int64_t remaining = 0;    // signals still needed this activation
    FiberFn fn;
    std::string name;
    std::uint64_t activations = 0;
  };

  struct Event {
    Cycles time = 0;
    std::uint64_t seq = 0;
    enum class Kind {
      Deliver,      // signal target's slot (optional data copy first)
      TryDispatch,  // poke a node's EU
      Token,        // spawn token arrival (activate if sync_count == 0)
      GetRequest,   // remote-read request arriving at the remote node
      Timer,        // local timer expiry signalling a fiber's slot
    } kind = Kind::Deliver;
    NodeId node = 0;                   // TryDispatch: node to poke
    FiberId target{};                  // Deliver/Token/GetRequest/Timer
    std::function<void()> deliver;     // Deliver: optional data copy
    std::function<std::function<void()>()> fetch;  // GetRequest
    NodeId reply_to = 0;               // GetRequest: requesting node
    std::uint64_t bytes = 0;           // stats / response sizing
    bool corrupted = false;            // payload damaged by a fault
    // Timer cancellation: the event is dead if *timer_gen has moved past
    // the snapshot taken when the timer was armed. Cancelled timers are
    // skipped without advancing simulated time, so a watchdog armed "just
    // in case" never inflates the makespan.
    std::shared_ptr<const std::uint64_t> timer_gen;
    std::uint64_t timer_gen_snapshot = 0;
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Node {
    Cycles eu_free = 0;    // EU available from this time
    Cycles su_free = 0;    // SU available from this time
    Cycles port_free = 0;  // outgoing network port available from this time
    std::deque<FiberId> ready;
    /// Spawn tokens issued to this node but not yet arrived — counted by
    /// the LeastLoaded balancer so a burst of spawns spreads out.
    std::uint64_t tokens_in_flight = 0;
    CacheModel cache;

    explicit Node(const CacheConfig& c) : cache(c) {}
  };

  static Event make_try_dispatch(Cycles at, NodeId node);
  void push_event(Event ev);
  /// Applies the fault model to a remote message and enqueues the
  /// survivors (possibly duplicated, delayed or marked corrupted).
  void post_remote(NodeId src, NodeId dst, MsgKind kind, Event ev);
  void record_fault(Cycles at, NodeId src, NodeId dst, MsgKind kind,
                    const char* what);
  void check_expectations();
  void signal(FiberId target, Cycles at);          // slot decrement at SU
  void process_deliver(const Event& ev);
  void process_try_dispatch(const Event& ev);
  void process_token(const Event& ev);
  void process_get_request(const Event& ev);
  void dispatch(NodeId node, Cycles at);
  /// Computes network arrival time for a message leaving `src` at `at`
  /// (eager port accounting; see op_send) and records traffic stats.
  Cycles route(NodeId src, Cycles at, std::uint64_t bytes);
  NodeId pick_spawn_node();
  // Called from FiberContext:
  void op_sync(FiberContext& ctx, FiberId target);
  void op_send(FiberContext& ctx, FiberId target, std::uint64_t bytes,
               std::function<void()> deliver);
  FiberId op_spawn(FiberContext& ctx, NodeId node, std::uint32_t sync_count,
                   FiberFn fn, std::string name);
  void op_get(FiberContext& ctx, NodeId from, std::uint64_t bytes,
              std::function<std::function<void()>()> fetch, FiberId target);
  void op_timer(FiberContext& ctx, FiberId target, Cycles delay,
                std::shared_ptr<const std::uint64_t> gen);
  void mem_access(FiberContext& ctx, ArrayTag tag, std::uint64_t index,
                  std::uint32_t elem_bytes);

  MachineConfig cfg_;
  // deque: stable references across dynamic spawns during dispatch.
  std::deque<Fiber> fibers_;
  std::vector<Node> nodes_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::uint64_t seq_ = 0;
  std::uint32_t spawn_rr_ = 0;  // round-robin spawn cursor
  MachineStats stats_;
  Trace trace_;
  bool running_ = false;
  bool delivering_corrupted_ = false;
  Xoshiro256 fault_rng_;
  /// expected total activations per declared fiber (expect_activations).
  std::vector<std::pair<FiberId, std::uint64_t>> expectations_;
};

}  // namespace earthred::earth
