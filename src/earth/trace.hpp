// Execution tracing for the EARTH machine simulator.
//
// When enabled (MachineConfig::trace), the machine records every fiber
// dispatch and SU event with start/end times. The trace can be dumped as
// CSV for offline analysis or rendered as a per-node text Gantt chart —
// the quickest way to *see* communication/computation overlap (k=1 shows
// EU gaps where portions are awaited; k=2 shows them filled).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "earth/types.hpp"

namespace earthred::earth {

struct TraceRecord {
  Cycles start = 0;
  Cycles end = 0;
  NodeId node = 0;
  enum class Kind : std::uint8_t { Fiber, SuEvent, Fault } kind = Kind::Fiber;
  std::string label;  ///< fiber name (empty for unnamed) / fault description
};

class Trace {
 public:
  void record(TraceRecord r) { records_.push_back(std::move(r)); }
  void clear() { records_.clear(); }

  const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  std::size_t size() const noexcept { return records_.size(); }

  /// Writes "start,end,node,kind,label" lines.
  void dump_csv(std::ostream& os) const;

  /// Renders one row per node over `width` time buckets; each cell shows
  /// the EU busy fraction in that bucket (' ' idle .. '#' saturated).
  /// `num_nodes` rows are emitted even for nodes with no records.
  std::string render_gantt(std::uint32_t num_nodes,
                           std::uint32_t width = 72) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace earthred::earth
