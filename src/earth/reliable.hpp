// Reliable message channel over the (possibly faulty) EARTH network.
//
// A ReliableChannel turns the machine's fire-and-forget `send` into a
// lossless, in-order, corruption-checked stream between one (src, dst)
// node pair — the protocol the rotation runtime layers under portion
// forwards and replication broadcasts so that reductions stay bit-exact
// under injected drops, duplicates, corruption and delays.
//
// Wire protocol (all state mutation rides in deliver closures, so it
// follows the simulated partial order):
//   * every payload carries a sequence number and a 64-bit checksum in a
//     `header_bytes` header charged to the message size;
//   * the receiver accepts strictly in sequence order: a matching
//     (seq, checksum) pair is applied via `on_accept`, acknowledged, and
//     `notify`'s sync slot is signaled; stale sequence numbers are
//     re-acknowledged (the previous ack may have been lost); future
//     sequence numbers and checksum mismatches are discarded without an
//     ack, leaving recovery to the sender;
//   * acks are cumulative ("everything through seq s arrived") and travel
//     the same faulty network in the reverse direction;
//   * the sender retains every unacknowledged payload and arms a local
//     timer per transmission: on expiry, unacked payloads are
//     retransmitted with per-payload exponential backoff (doubling up to
//     `max_timeout`); after `max_retries` retransmissions the channel
//     declares the link dead with a `check_error` naming itself — a
//     permanently dead link becomes a diagnostic, never a hang;
//   * timers are generation-cancelled when the window empties, so an
//     idle channel leaves no trailing events and no makespan inflation.
//
// Three protocol fibers are registered per channel: `rx` on dst (one
// activation per arriving data frame), `ack` on src (ack arrival target),
// and `retx` on src (timer target). Their cycle costs — plus the header
// and ack bytes on the wire — are the price of reliability, quantified by
// bench_ablation_faults.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "earth/fiber.hpp"
#include "earth/types.hpp"

namespace earthred::earth {

class EarthMachine;

/// Tuning knobs for a ReliableChannel.
struct ReliableOptions {
  /// Initial retransmit timeout in cycles; 0 = derive from the machine's
  /// network/cost config and the message size (≈ 2 round trips + slack).
  Cycles ack_timeout = 0;
  /// Backoff multiplier applied to a payload's timeout per retransmission.
  double backoff = 2.0;
  /// Ceiling on the per-payload timeout.
  Cycles max_timeout = 1u << 20;
  /// Retransmissions of one payload before the link is declared dead.
  std::uint32_t max_retries = 12;
  /// On-the-wire size of the seq + checksum header.
  std::uint64_t header_bytes = 16;
  /// On-the-wire size of an ack frame.
  std::uint64_t ack_bytes = 16;
};

/// Protocol counters, aggregated per channel (and summed by the engines).
struct ReliableStats {
  std::uint64_t sent = 0;              ///< distinct payloads handed to send()
  std::uint64_t retransmits = 0;       ///< extra transmissions of a payload
  std::uint64_t acks_sent = 0;         ///< acks emitted (incl. re-acks)
  std::uint64_t rejected_stale = 0;    ///< duplicate / out-of-order frames
  std::uint64_t rejected_corrupt = 0;  ///< checksum mismatches

  void add(const ReliableStats& o) noexcept {
    sent += o.sent;
    retransmits += o.retransmits;
    acks_sent += o.acks_sent;
    rejected_stale += o.rejected_stale;
    rejected_corrupt += o.rejected_corrupt;
  }
};

class ReliableChannel {
 public:
  /// Runs at the receiver when a payload is accepted (in sequence order,
  /// exactly once per payload), before `notify` is signaled.
  using AcceptFn = std::function<void(const std::vector<double>&)>;

  /// Registers the three protocol fibers on `machine`. `notify` (if
  /// valid) receives one sync signal per accepted payload. The channel
  /// must outlive the machine's run() calls that use it.
  ReliableChannel(EarthMachine& machine, NodeId src, NodeId dst,
                  FiberId notify, AcceptFn on_accept, std::string name,
                  ReliableOptions opt = {});

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Sends `count` doubles starting at `data` reliably. Must be called
  /// from a fiber executing on the src node; the payload is snapshotted
  /// immediately (message semantics — later mutation of the source array
  /// does not affect retransmissions).
  void send(FiberContext& ctx, const double* data, std::size_t count);

  const ReliableStats& stats() const noexcept { return stats_; }
  const std::string& name() const noexcept { return name_; }
  NodeId src() const noexcept { return src_; }
  NodeId dst() const noexcept { return dst_; }

 private:
  struct TxSlot {
    std::shared_ptr<const std::vector<double>> payload;
    std::uint64_t checksum = 0;
    Cycles deadline = 0;  ///< retransmit when now reaches this
    Cycles timeout = 0;   ///< current backoff interval
    std::uint32_t retries = 0;
  };
  struct RxFrame {
    std::uint64_t seq = 0;
    std::uint64_t checksum = 0;
    std::vector<double> payload;
  };

  void transmit(FiberContext& ctx, std::uint64_t seq, const TxSlot& slot);
  void on_rx(FiberContext& ctx);
  void on_ack(FiberContext& ctx);
  void on_retx_timer(FiberContext& ctx);
  void send_ack(FiberContext& ctx, std::uint64_t upto);
  Cycles initial_timeout(std::uint64_t payload_bytes) const;
  static std::uint64_t checksum_of(const std::vector<double>& payload);

  EarthMachine& m_;
  NodeId src_;
  NodeId dst_;
  FiberId notify_;
  AcceptFn on_accept_;
  std::string name_;
  ReliableOptions opt_;

  FiberId rx_fiber_;
  FiberId ack_fiber_;
  FiberId retx_fiber_;

  // Sender state.
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, TxSlot> outstanding_;
  std::shared_ptr<std::uint64_t> timer_gen_;
  std::deque<std::uint64_t> ack_queue_;

  // Receiver state.
  std::uint64_t expected_ = 0;
  std::deque<RxFrame> rx_queue_;

  ReliableStats stats_;
};

}  // namespace earthred::earth
