// Fundamental identifiers and configuration types for the simulated EARTH
// machine (Efficient Architecture for Running Threads, Sec. 5.2 of the
// paper). The simulator models, per node, an Execution Unit (EU) that runs
// non-preemptive fibers and a Synchronization Unit (SU) that handles sync /
// communication events — mirroring the paper's manna-dual configuration in
// which two i860XP processors per node serve as EU and SU respectively.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace earthred::earth {

/// Index of a machine node (processor pair EU+SU).
using NodeId = std::uint32_t;

/// Target for dynamic spawns meaning "any node": the machine's load
/// balancer picks the destination (EARTH token semantics).
inline constexpr NodeId kAnyNode = 0xFFFFFFFFu;

/// Placement policy for kAnyNode spawns.
enum class SpawnPolicy : std::uint8_t { RoundRobin, LeastLoaded };

/// Simulated time in processor cycles.
using Cycles = std::uint64_t;

/// Handle to a fiber registered with the machine.
struct FiberId {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();

  constexpr bool valid() const noexcept { return value != kInvalid; }
  friend constexpr bool operator==(FiberId, FiberId) = default;
};

/// Cycle charges for primitive machine actions. Defaults approximate a
/// 50 MHz i860XP-class node; they are deliberately coarse — the figures of
/// the paper depend on ratios (compute per iteration vs. communication
/// latency vs. switch overhead), not on absolute accuracy.
struct CostConfig {
  /// Cycles per floating-point operation charged by kernels.
  Cycles flop = 1;
  /// Cycles per integer/index operation charged by kernels.
  Cycles intop = 1;
  /// EU cycles to dispatch (switch to) a fiber.
  Cycles fiber_switch = 40;
  /// EU cycles to issue an EARTH operation (sync/send/spawn) to the SU.
  Cycles op_issue = 8;
  /// SU cycles to process one event (sync decrement, message handling).
  Cycles su_event = 30;
  /// Cache hit / miss latencies for modeled memory references.
  Cycles cache_hit = 1;
  Cycles cache_miss = 20;
};

/// Interconnection network model: a fixed per-message latency plus a
/// bandwidth term, with each node's outgoing port serialized (a message
/// occupies the sender's port for bytes/bandwidth cycles).
struct NetworkConfig {
  /// End-to-end latency of a message in cycles (wire + routing).
  Cycles latency = 150;
  /// Outgoing link bandwidth in bytes per cycle (MANNA-like: ~1 B/cycle).
  double bytes_per_cycle = 1.0;
  /// Fixed SU-side cost to inject a message.
  Cycles inject_overhead = 50;
};

/// Per-node data cache model (i860XP-like: 16 KB, 4-way, 32 B lines).
struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;
  /// Disables the cache model entirely (every access costs `cache_hit`);
  /// used by tests that want pure arithmetic costs.
  bool enabled = true;
};

/// Classes of network messages a fault filter can select. `Send` covers
/// data sends and sync signals (op_send), `Token` spawn tokens, and the
/// two `Get*` kinds the halves of a split-phase remote read. `Any`
/// matches every class.
enum class MsgKind : std::uint8_t { Send, Token, GetRequest, GetReply, Any };

/// Human-readable name for a message kind ("send", "token", ...).
const char* to_string(MsgKind k) noexcept;

/// Selects which network messages are eligible for probabilistic faults.
/// `kAnyNode` in src/dst acts as a wildcard.
struct FaultFilter {
  NodeId src = kAnyNode;
  NodeId dst = kAnyNode;
  MsgKind kind = MsgKind::Any;

  bool matches(NodeId s, NodeId d, MsgKind k) const noexcept {
    return (src == kAnyNode || src == s) && (dst == kAnyNode || dst == d) &&
           (kind == MsgKind::Any || kind == k);
  }
};

/// Deterministic, seeded fault injection on the simulated network.
///
/// Faults apply only to *remote* messages (local operations never touch
/// the network). Each eligible message draws from a dedicated PRNG in
/// event order, so a given seed reproduces the exact same fault schedule.
/// Semantics per fault kind:
///   * drop      — the message vanishes: no delivery, no sync signal;
///   * corrupt   — the message arrives and signals its target, but the
///                 payload is damaged in flight: the deliver closure runs
///                 with EarthMachine::delivery_corrupted() == true, and
///                 control messages (Token/GetRequest) are discarded like
///                 drops (a damaged control frame fails its CRC);
///   * duplicate — a second identical copy arrives `duplicate_lag` cycles
///                 after the first;
///   * delay     — the message arrives `delay_cycles` late (which can
///                 reorder it past later traffic).
/// Every injected fault is counted in MachineStats::faults and, when
/// tracing is on, recorded as a TraceRecord::Kind::Fault.
struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0x5eedULL;
  double drop = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  /// Extra latency added when a delay fault fires.
  Cycles delay_cycles = 400;
  /// How far behind the original the duplicate copy arrives.
  Cycles duplicate_lag = 64;
  /// Which messages the probabilistic faults may hit.
  FaultFilter filter{};
  /// (src, dst) pairs whose messages are *always* dropped — a permanently
  /// dead link, independent of `filter` and the probabilities.
  std::vector<std::pair<NodeId, NodeId>> dead_links;

  /// True when any fault can actually fire.
  bool active() const noexcept {
    return enabled && (drop > 0.0 || corrupt > 0.0 || duplicate > 0.0 ||
                       delay > 0.0 || !dead_links.empty());
  }
};

/// Top-level machine configuration.
struct MachineConfig {
  std::uint32_t num_nodes = 1;
  CostConfig cost{};
  NetworkConfig net{};
  CacheConfig cache{};
  /// Placement of kAnyNode spawns.
  SpawnPolicy spawn_policy = SpawnPolicy::LeastLoaded;
  /// Bytes carried by a spawn token (the threaded-procedure frame).
  std::uint64_t spawn_token_bytes = 64;
  /// Record a TraceRecord per fiber dispatch and SU event (see
  /// earth/trace.hpp); costs host memory proportional to event count.
  bool trace = false;
  /// Upper bound on processed events; guards against accidental live-lock
  /// in tests (0 = unlimited).
  std::uint64_t max_events = 0;
  /// Fault injection on the network (see FaultConfig).
  FaultConfig fault{};
};

}  // namespace earthred::earth
