// Fundamental identifiers and configuration types for the simulated EARTH
// machine (Efficient Architecture for Running Threads, Sec. 5.2 of the
// paper). The simulator models, per node, an Execution Unit (EU) that runs
// non-preemptive fibers and a Synchronization Unit (SU) that handles sync /
// communication events — mirroring the paper's manna-dual configuration in
// which two i860XP processors per node serve as EU and SU respectively.
#pragma once

#include <cstdint>
#include <limits>

namespace earthred::earth {

/// Index of a machine node (processor pair EU+SU).
using NodeId = std::uint32_t;

/// Target for dynamic spawns meaning "any node": the machine's load
/// balancer picks the destination (EARTH token semantics).
inline constexpr NodeId kAnyNode = 0xFFFFFFFFu;

/// Placement policy for kAnyNode spawns.
enum class SpawnPolicy : std::uint8_t { RoundRobin, LeastLoaded };

/// Simulated time in processor cycles.
using Cycles = std::uint64_t;

/// Handle to a fiber registered with the machine.
struct FiberId {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();

  constexpr bool valid() const noexcept { return value != kInvalid; }
  friend constexpr bool operator==(FiberId, FiberId) = default;
};

/// Cycle charges for primitive machine actions. Defaults approximate a
/// 50 MHz i860XP-class node; they are deliberately coarse — the figures of
/// the paper depend on ratios (compute per iteration vs. communication
/// latency vs. switch overhead), not on absolute accuracy.
struct CostConfig {
  /// Cycles per floating-point operation charged by kernels.
  Cycles flop = 1;
  /// Cycles per integer/index operation charged by kernels.
  Cycles intop = 1;
  /// EU cycles to dispatch (switch to) a fiber.
  Cycles fiber_switch = 40;
  /// EU cycles to issue an EARTH operation (sync/send/spawn) to the SU.
  Cycles op_issue = 8;
  /// SU cycles to process one event (sync decrement, message handling).
  Cycles su_event = 30;
  /// Cache hit / miss latencies for modeled memory references.
  Cycles cache_hit = 1;
  Cycles cache_miss = 20;
};

/// Interconnection network model: a fixed per-message latency plus a
/// bandwidth term, with each node's outgoing port serialized (a message
/// occupies the sender's port for bytes/bandwidth cycles).
struct NetworkConfig {
  /// End-to-end latency of a message in cycles (wire + routing).
  Cycles latency = 150;
  /// Outgoing link bandwidth in bytes per cycle (MANNA-like: ~1 B/cycle).
  double bytes_per_cycle = 1.0;
  /// Fixed SU-side cost to inject a message.
  Cycles inject_overhead = 50;
};

/// Per-node data cache model (i860XP-like: 16 KB, 4-way, 32 B lines).
struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;
  /// Disables the cache model entirely (every access costs `cache_hit`);
  /// used by tests that want pure arithmetic costs.
  bool enabled = true;
};

/// Top-level machine configuration.
struct MachineConfig {
  std::uint32_t num_nodes = 1;
  CostConfig cost{};
  NetworkConfig net{};
  CacheConfig cache{};
  /// Placement of kAnyNode spawns.
  SpawnPolicy spawn_policy = SpawnPolicy::LeastLoaded;
  /// Bytes carried by a spawn token (the threaded-procedure frame).
  std::uint64_t spawn_token_bytes = 64;
  /// Record a TraceRecord per fiber dispatch and SU event (see
  /// earth/trace.hpp); costs host memory proportional to event count.
  bool trace = false;
  /// Upper bound on processed events; guards against accidental live-lock
  /// in tests (0 = unlimited).
  std::uint64_t max_events = 0;
};

}  // namespace earthred::earth
