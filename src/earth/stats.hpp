// Execution statistics collected by the EARTH machine simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "earth/types.hpp"

namespace earthred::earth {

/// Per-node counters.
struct NodeStats {
  Cycles eu_busy = 0;          ///< cycles the EU spent running fibers
  Cycles su_busy = 0;          ///< cycles the SU spent processing events
  std::uint64_t fibers_run = 0;
  std::uint64_t su_events = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Counts of injected network faults (see FaultConfig).
struct FaultStats {
  std::uint64_t dropped = 0;     ///< messages that vanished (incl. dead links)
  std::uint64_t corrupted = 0;   ///< payloads damaged in flight
  std::uint64_t duplicated = 0;  ///< extra copies injected
  std::uint64_t delayed = 0;     ///< messages arriving late

  std::uint64_t injected() const noexcept {
    return dropped + corrupted + duplicated + delayed;
  }
};

/// Whole-machine counters.
struct MachineStats {
  Cycles makespan = 0;         ///< time of the last processed event
  std::uint64_t events = 0;    ///< total simulator events processed
  FaultStats faults;           ///< injected network faults
  std::vector<NodeStats> node; ///< indexed by NodeId

  std::uint64_t total_msgs() const noexcept {
    std::uint64_t s = 0;
    for (const auto& n : node) s += n.msgs_sent;
    return s;
  }
  std::uint64_t total_bytes() const noexcept {
    std::uint64_t s = 0;
    for (const auto& n : node) s += n.bytes_sent;
    return s;
  }
  double cache_miss_rate() const noexcept {
    std::uint64_t h = 0, m = 0;
    for (const auto& n : node) {
      h += n.cache_hits;
      m += n.cache_misses;
    }
    return (h + m) == 0 ? 0.0
                        : static_cast<double>(m) / static_cast<double>(h + m);
  }
  /// Mean EU utilization over all nodes (busy / makespan).
  double eu_utilization() const noexcept {
    if (makespan == 0 || node.empty()) return 0.0;
    double s = 0;
    for (const auto& n : node) s += static_cast<double>(n.eu_busy);
    return s / (static_cast<double>(makespan) *
                static_cast<double>(node.size()));
  }
};

}  // namespace earthred::earth
