#include "earth/reliable.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "earth/machine.hpp"
#include "support/check.hpp"

namespace earthred::earth {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

}  // namespace

ReliableChannel::ReliableChannel(EarthMachine& machine, NodeId src,
                                 NodeId dst, FiberId notify,
                                 AcceptFn on_accept, std::string name,
                                 ReliableOptions opt)
    : m_(machine),
      src_(src),
      dst_(dst),
      notify_(notify),
      on_accept_(std::move(on_accept)),
      name_(std::move(name)),
      opt_(opt),
      timer_gen_(std::make_shared<std::uint64_t>(0)) {
  ER_EXPECTS(src_ < m_.num_nodes());
  ER_EXPECTS(dst_ < m_.num_nodes());
  ER_EXPECTS_MSG(static_cast<bool>(on_accept_),
                 "ReliableChannel needs an accept callback");
  ER_EXPECTS_MSG(!notify_.valid() || m_.fiber_node(notify_) == dst_,
                 "notify fiber must live on the channel's destination node");
  ER_EXPECTS(opt_.backoff >= 1.0);
  rx_fiber_ = m_.add_fiber(
      dst_, 1, [this](FiberContext& ctx) { on_rx(ctx); }, name_ + ".rx");
  ack_fiber_ = m_.add_fiber(
      src_, 1, [this](FiberContext& ctx) { on_ack(ctx); }, name_ + ".ack");
  retx_fiber_ = m_.add_fiber(
      src_, 1, [this](FiberContext& ctx) { on_retx_timer(ctx); },
      name_ + ".retx");
}

std::uint64_t ReliableChannel::checksum_of(
    const std::vector<double>& payload) {
  // FNV-1a over the bit patterns: sensitive to any single-bit flip, and
  // well-defined for every double including NaNs and signed zeros.
  std::uint64_t h = kFnvOffset;
  for (double d : payload) {
    const auto bits = std::bit_cast<std::uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= kFnvPrime;
    }
  }
  return h;
}

Cycles ReliableChannel::initial_timeout(std::uint64_t payload_bytes) const {
  if (opt_.ack_timeout != 0) return opt_.ack_timeout;
  // One uncontended round trip: data frame out, SU handling + rx fiber at
  // the receiver, ack frame back, SU handling at the sender. Doubled, plus
  // slack, so that ordinary port contention does not trigger retransmits.
  const auto& c = m_.config();
  const auto xfer = [&c](std::uint64_t b) {
    return c.net.inject_overhead +
           static_cast<Cycles>(std::llround(std::ceil(
               static_cast<double>(b) / c.net.bytes_per_cycle))) +
           c.net.latency;
  };
  const Cycles rtt = xfer(opt_.header_bytes + payload_bytes) +
                     xfer(opt_.ack_bytes) + 4 * c.cost.su_event +
                     2 * c.cost.fiber_switch + 2 * c.cost.op_issue;
  return 2 * rtt + 256;
}

void ReliableChannel::send(FiberContext& ctx, const double* data,
                           std::size_t count) {
  ER_EXPECTS_MSG(ctx.node() == src_,
                 "ReliableChannel::send must run on the source node");
  ER_EXPECTS(count == 0 || data != nullptr);
  const std::uint64_t seq = next_seq_++;
  ++stats_.sent;

  TxSlot slot;
  // Snapshot the payload: message semantics. The sender's array region may
  // be overwritten by the next sweep long before the last retransmission.
  slot.payload =
      std::make_shared<const std::vector<double>>(data, data + count);
  slot.checksum = checksum_of(*slot.payload);
  slot.timeout = initial_timeout(count * sizeof(double));

  const bool first_outstanding = outstanding_.empty();
  transmit(ctx, seq, slot);
  slot.deadline = ctx.now() + slot.timeout;
  // One live timer chain per channel: armed when the window opens,
  // re-armed by each expiry, generation-cancelled when the window empties.
  if (first_outstanding) ctx.timer(retx_fiber_, slot.timeout, timer_gen_);
  outstanding_.emplace(seq, std::move(slot));
}

void ReliableChannel::transmit(FiberContext& ctx, std::uint64_t seq,
                               const TxSlot& slot) {
  const std::uint64_t bytes =
      opt_.header_bytes + slot.payload->size() * sizeof(double);
  // The deliver closure stages a *copy* at the receiver (appended, never
  // overwritten, so reordered and duplicate arrivals coexist). A corrupt
  // fault damages that staged copy — one bit flip, position derived from
  // the sequence number — which the checksum catches on acceptance.
  ctx.send(rx_fiber_, bytes,
           [this, seq, payload = slot.payload, ck = slot.checksum] {
             RxFrame frame;
             frame.seq = seq;
             frame.checksum = ck;
             frame.payload = *payload;
             if (m_.delivery_corrupted()) {
               if (frame.payload.empty()) {
                 frame.checksum ^= 1;
               } else {
                 double& victim = frame.payload[seq % frame.payload.size()];
                 victim = std::bit_cast<double>(
                     std::bit_cast<std::uint64_t>(victim) ^
                     (1ull << (seq % 64)));
               }
             }
             rx_queue_.push_back(std::move(frame));
           });
}

void ReliableChannel::on_rx(FiberContext& ctx) {
  // One signal arrives per staged frame, but a single activation drains
  // everything staged so far; later activations may find the queue empty.
  while (!rx_queue_.empty()) {
    RxFrame frame = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    ctx.charge_intops(8);
    if (frame.seq != expected_) {
      // Duplicate or reordered-past-acceptance frame. For an already
      // accepted seq the ack may have been lost — re-ack so the sender can
      // retire it. A future seq is dropped: in-order acceptance means it
      // could not be applied yet, and the sender will retransmit it.
      ++stats_.rejected_stale;
      if (frame.seq < expected_) send_ack(ctx, expected_ - 1);
      continue;
    }
    if (checksum_of(frame.payload) != frame.checksum) {
      // Damaged in flight. No ack: the retransmit timer recovers it.
      ++stats_.rejected_corrupt;
      continue;
    }
    ctx.charge_intops(frame.payload.size());
    on_accept_(frame.payload);
    ++expected_;
    send_ack(ctx, expected_ - 1);
    if (notify_.valid()) ctx.sync(notify_);
  }
}

void ReliableChannel::send_ack(FiberContext& ctx, std::uint64_t upto) {
  ++stats_.acks_sent;
  // Acks cross the same faulty network; a corrupted ack fails its CRC and
  // is discarded (the data-frame re-ack path recovers the loss).
  ctx.send(ack_fiber_, opt_.ack_bytes, [this, upto] {
    if (m_.delivery_corrupted()) return;
    ack_queue_.push_back(upto);
  });
}

void ReliableChannel::on_ack(FiberContext& ctx) {
  while (!ack_queue_.empty()) {
    const std::uint64_t upto = ack_queue_.front();
    ack_queue_.pop_front();
    ctx.charge_intops(4);
    // Cumulative: everything through `upto` is acknowledged.
    outstanding_.erase(outstanding_.begin(),
                       outstanding_.upper_bound(upto));
    if (outstanding_.empty()) ++*timer_gen_;  // cancel the timer chain
  }
}

void ReliableChannel::on_retx_timer(FiberContext& ctx) {
  if (outstanding_.empty()) return;  // all acked since the timer was armed
  const Cycles now = ctx.now();
  for (auto& [seq, slot] : outstanding_) {
    if (slot.deadline > now) continue;
    if (slot.retries >= opt_.max_retries)
      throw check_error(
          "ReliableChannel '" + name_ + "': seq " + std::to_string(seq) +
          " still unacknowledged after " + std::to_string(slot.retries) +
          " retransmits (dead link " + std::to_string(src_) + "->" +
          std::to_string(dst_) + "?)");
    ++slot.retries;
    ++stats_.retransmits;
    transmit(ctx, seq, slot);
    slot.timeout = std::min<Cycles>(
        opt_.max_timeout,
        static_cast<Cycles>(static_cast<double>(slot.timeout) *
                            opt_.backoff));
    slot.deadline = ctx.now() + slot.timeout;
  }
  Cycles earliest = outstanding_.begin()->second.deadline;
  for (const auto& [seq, slot] : outstanding_)
    earliest = std::min(earliest, slot.deadline);
  const Cycles at = ctx.now();
  ctx.timer(retx_fiber_, earliest > at ? earliest - at : 1, timer_gen_);
}

}  // namespace earthred::earth
