// Set-associative LRU data-cache model used by the Execution Unit cost
// model. The paper attributes both the superlinear mvm speedups and the
// small-configuration euler/moldyn overheads to cache behaviour (Sec. 5.3,
// 5.4.3); this model is what lets the simulator reproduce those shapes.
//
// Addresses are synthetic: kernels form them from an array tag and an
// element index (see MemRef in cost.hpp). The model tracks tags only — no
// data — so a lookup is a few dozen nanoseconds of host time.
#pragma once

#include <cstdint>
#include <vector>

#include "earth/types.hpp"

namespace earthred::earth {

/// One node's private data cache. LRU within each set, allocate-on-miss
/// for both loads and stores (write-allocate, write-back; dirty evictions
/// are not charged separately — the miss latency subsumes them).
class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& cfg);

  /// Touches `addr`; returns true on hit. Updates LRU state.
  bool access(std::uint64_t addr) noexcept;

  /// Invalidates all lines (used at simulation resets).
  void clear() noexcept;

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint32_t num_sets() const noexcept { return num_sets_; }
  std::uint32_t ways() const noexcept { return ways_; }
  bool enabled() const noexcept { return enabled_; }

 private:
  struct Line {
    std::uint64_t tag = ~0ULL;
    std::uint64_t lru = 0;  // larger = more recently used
  };

  bool enabled_;
  std::uint32_t line_shift_;
  std::uint32_t num_sets_;
  std::uint32_t ways_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Line> lines_;  // num_sets_ * ways_, set-major
};

}  // namespace earthred::earth
