#include "earth/machine.hpp"

#include <cmath>
#include <utility>

#include "support/check.hpp"
#include "support/str.hpp"

namespace earthred::earth {

const char* to_string(MsgKind k) noexcept {
  switch (k) {
    case MsgKind::Send: return "send";
    case MsgKind::Token: return "token";
    case MsgKind::GetRequest: return "get-req";
    case MsgKind::GetReply: return "get-reply";
    case MsgKind::Any: return "any";
  }
  return "?";
}

void FiberContext::charge_flops(std::uint64_t n) noexcept {
  charged_ += n * (machine_ ? machine_->config().cost.flop : 1);
}

void FiberContext::charge_intops(std::uint64_t n) noexcept {
  charged_ += n * (machine_ ? machine_->config().cost.intop : 1);
}

void FiberContext::load(ArrayTag tag, std::uint64_t index,
                        std::uint32_t elem_bytes) {
  if (machine_) {
    machine_->mem_access(*this, tag, index, elem_bytes);
  } else {
    charged_ += 1;
  }
}

void FiberContext::store(ArrayTag tag, std::uint64_t index,
                         std::uint32_t elem_bytes) {
  if (machine_) {
    machine_->mem_access(*this, tag, index, elem_bytes);
  } else {
    charged_ += 1;
  }
}

void FiberContext::sync(FiberId target) {
  ER_EXPECTS_MSG(machine_ != nullptr,
                 "EARTH operations require an attached context");
  machine_->op_sync(*this, target);
}

FiberId FiberContext::spawn(NodeId node, std::uint32_t sync_count,
                            FiberFn fn, std::string name) {
  ER_EXPECTS_MSG(machine_ != nullptr,
                 "EARTH operations require an attached context");
  return machine_->op_spawn(*this, node, sync_count, std::move(fn),
                            std::move(name));
}

void FiberContext::get(NodeId from, std::uint64_t bytes,
                       std::function<std::function<void()>()> fetch,
                       FiberId target) {
  ER_EXPECTS_MSG(machine_ != nullptr,
                 "EARTH operations require an attached context");
  machine_->op_get(*this, from, bytes, std::move(fetch), target);
}

void FiberContext::send(FiberId target, std::uint64_t bytes,
                        std::function<void()> deliver) {
  ER_EXPECTS_MSG(machine_ != nullptr,
                 "EARTH operations require an attached context");
  machine_->op_send(*this, target, bytes, std::move(deliver));
}

void FiberContext::timer(FiberId target, Cycles delay,
                         std::shared_ptr<const std::uint64_t> gen) {
  ER_EXPECTS_MSG(machine_ != nullptr,
                 "EARTH operations require an attached context");
  machine_->op_timer(*this, target, delay, std::move(gen));
}

EarthMachine::EarthMachine(MachineConfig cfg)
    : cfg_(cfg), fault_rng_(cfg.fault.seed) {
  ER_EXPECTS(cfg_.num_nodes >= 1);
  nodes_.reserve(cfg_.num_nodes);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i)
    nodes_.emplace_back(cfg_.cache);
  stats_.node.resize(cfg_.num_nodes);
}

FiberId EarthMachine::add_fiber(NodeId node, std::uint32_t sync_count,
                                FiberFn fn, std::string name) {
  ER_EXPECTS(!running_);
  ER_EXPECTS(node < cfg_.num_nodes);
  ER_EXPECTS_MSG(static_cast<bool>(fn), "fiber body must be callable");
  Fiber f;
  f.node = node;
  f.sync_count = sync_count;
  f.remaining = static_cast<std::int64_t>(sync_count);
  f.fn = std::move(fn);
  f.name = std::move(name);
  fibers_.push_back(std::move(f));
  return FiberId{static_cast<std::uint32_t>(fibers_.size() - 1)};
}

void EarthMachine::credit(FiberId fiber, std::uint32_t n) {
  ER_EXPECTS(!running_);
  ER_EXPECTS(fiber.value < fibers_.size());
  Fiber& f = fibers_[fiber.value];
  for (std::uint32_t i = 0; i < n; ++i) {
    if (f.sync_count == 0) {
      nodes_[f.node].ready.push_back(fiber);
      push_event(make_try_dispatch(now(), f.node));
      continue;
    }
    if (--f.remaining == 0) {
      f.remaining += static_cast<std::int64_t>(f.sync_count);
      nodes_[f.node].ready.push_back(fiber);
      push_event(make_try_dispatch(now(), f.node));
    }
  }
}

void EarthMachine::expect_activations(FiberId fiber, std::uint64_t total) {
  ER_EXPECTS(!running_);
  ER_EXPECTS(fiber.value < fibers_.size());
  for (auto& [f, t] : expectations_) {
    if (f == fiber) {
      t = total;
      return;
    }
  }
  expectations_.emplace_back(fiber, total);
}

const std::string& EarthMachine::fiber_name(FiberId f) const {
  ER_EXPECTS(f.value < fibers_.size());
  return fibers_[f.value].name;
}

NodeId EarthMachine::fiber_node(FiberId f) const {
  ER_EXPECTS(f.value < fibers_.size());
  return fibers_[f.value].node;
}

std::uint64_t EarthMachine::fiber_activations(FiberId f) const {
  ER_EXPECTS(f.value < fibers_.size());
  return fibers_[f.value].activations;
}

EarthMachine::Event EarthMachine::make_try_dispatch(Cycles at,
                                                    NodeId node) {
  Event ev;
  ev.time = at;
  ev.kind = Event::Kind::TryDispatch;
  ev.node = node;
  return ev;
}

void EarthMachine::push_event(Event ev) {
  ev.seq = ++seq_;
  queue_.push(std::move(ev));
}

Cycles EarthMachine::run() {
  ER_EXPECTS(!running_);
  running_ = true;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    ++stats_.events;
    if (cfg_.max_events != 0 && stats_.events > cfg_.max_events)
      throw check_error("EarthMachine: max_events exceeded (live-lock?)");
    // A cancelled timer is skipped before it can advance simulated time.
    if (ev.kind == Event::Kind::Timer && ev.timer_gen &&
        *ev.timer_gen != ev.timer_gen_snapshot)
      continue;
    stats_.makespan = std::max(stats_.makespan, ev.time);
    switch (ev.kind) {
      case Event::Kind::Deliver:
      case Event::Kind::Timer:
        process_deliver(ev);
        break;
      case Event::Kind::TryDispatch:
        process_try_dispatch(ev);
        break;
      case Event::Kind::Token:
        process_token(ev);
        break;
      case Event::Kind::GetRequest:
        process_get_request(ev);
        break;
    }
  }
  // Fold cache counters into the public stats.
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i) {
    stats_.node[i].cache_hits = nodes_[i].cache.hits();
    stats_.node[i].cache_misses = nodes_[i].cache.misses();
  }
  running_ = false;
  check_expectations();
  return stats_.makespan;
}

void EarthMachine::check_expectations() {
  std::string stuck;
  for (const auto& [fid, total] : expectations_) {
    const Fiber& f = fibers_[fid.value];
    if (f.activations >= total) continue;
    if (!stuck.empty()) stuck += "; ";
    const std::string name =
        f.name.empty() ? "fiber#" + std::to_string(fid.value) : f.name;
    stuck += name + " on node " + std::to_string(f.node) + ": " +
             std::to_string(f.activations) + "/" + std::to_string(total) +
             " activations, slot waiting on " + std::to_string(f.remaining) +
             "/" + std::to_string(f.sync_count) + " signals";
  }
  if (!stuck.empty())
    throw check_error(
        "EarthMachine: event queue drained with unsatisfied sync "
        "dependencies (lost message or schedule bug?): " +
        stuck);
}

void EarthMachine::record_fault(Cycles at, NodeId src, NodeId dst,
                                MsgKind kind, const char* what) {
  if (!cfg_.trace) return;
  trace_.record(TraceRecord{
      at, at, src, TraceRecord::Kind::Fault,
      std::string(what) + " " + std::to_string(src) + "->" +
          std::to_string(dst) + " " + to_string(kind)});
}

void EarthMachine::post_remote(NodeId src, NodeId dst, MsgKind kind,
                               Event ev) {
  const FaultConfig& fc = cfg_.fault;
  if (!fc.active()) {
    push_event(std::move(ev));
    return;
  }
  // A dead link swallows everything on it, unconditionally.
  for (const auto& [a, b] : fc.dead_links) {
    if (a == src && b == dst) {
      ++stats_.faults.dropped;
      record_fault(ev.time, src, dst, kind, "drop(dead-link)");
      return;
    }
  }
  if (fc.filter.matches(src, dst, kind)) {
    // Independent Bernoulli draws per fault class, in a fixed order, from
    // the machine's dedicated fault PRNG: the schedule of injected faults
    // is a pure function of the seed and the (deterministic) event order.
    if (fc.drop > 0.0 && fault_rng_.chance(fc.drop)) {
      ++stats_.faults.dropped;
      record_fault(ev.time, src, dst, kind, "drop");
      return;
    }
    if (fc.corrupt > 0.0 && fault_rng_.chance(fc.corrupt)) {
      ++stats_.faults.corrupted;
      record_fault(ev.time, src, dst, kind, "corrupt");
      // A damaged control frame is discarded by the hardware CRC; a
      // damaged data payload still arrives and signals its target, with
      // delivery_corrupted() raised for receivers that stage payloads.
      if (kind == MsgKind::Token || kind == MsgKind::GetRequest) return;
      ev.corrupted = true;
    }
    if (fc.duplicate > 0.0 && fault_rng_.chance(fc.duplicate)) {
      ++stats_.faults.duplicated;
      record_fault(ev.time, src, dst, kind, "duplicate");
      Event dup = ev;
      dup.time += fc.duplicate_lag;
      push_event(std::move(dup));
    }
    if (fc.delay > 0.0 && fault_rng_.chance(fc.delay)) {
      ++stats_.faults.delayed;
      record_fault(ev.time, src, dst, kind, "delay");
      ev.time += fc.delay_cycles;
    }
  }
  push_event(std::move(ev));
}

void EarthMachine::signal(FiberId target, Cycles at) {
  Fiber& f = fibers_[target.value];
  ER_ENSURES_MSG(f.sync_count > 0,
                 "signal sent to credit-only fiber '" + f.name + "'");
  if (--f.remaining == 0) {
    f.remaining += static_cast<std::int64_t>(f.sync_count);
    nodes_[f.node].ready.push_back(target);
    push_event(make_try_dispatch(at, f.node));
  }
}

void EarthMachine::process_deliver(const Event& ev) {
  ER_ENSURES(ev.target.value < fibers_.size());
  const NodeId dst = fibers_[ev.target.value].node;
  Node& node = nodes_[dst];
  const Cycles start = std::max(ev.time, node.su_free);
  node.su_free = start + cfg_.cost.su_event;
  stats_.node[dst].su_busy += cfg_.cost.su_event;
  ++stats_.node[dst].su_events;
  stats_.makespan = std::max(stats_.makespan, node.su_free);
  if (cfg_.trace)
    trace_.record(TraceRecord{start, node.su_free, dst,
                              TraceRecord::Kind::SuEvent, {}});
  if (ev.deliver) {
    delivering_corrupted_ = ev.corrupted;
    ev.deliver();
    delivering_corrupted_ = false;
  }
  signal(ev.target, node.su_free);
}

void EarthMachine::process_try_dispatch(const Event& ev) {
  Node& node = nodes_[ev.node];
  if (node.ready.empty()) return;
  if (node.eu_free > ev.time) {
    // EU still busy; re-poke when it frees up.
    push_event(make_try_dispatch(node.eu_free, ev.node));
    return;
  }
  dispatch(ev.node, ev.time);
}

void EarthMachine::dispatch(NodeId node_id, Cycles at) {
  Node& node = nodes_[node_id];
  const FiberId fid = node.ready.front();
  node.ready.pop_front();
  Fiber& f = fibers_[fid.value];

  FiberContext ctx(this, node_id, fid, at, f.activations);
  ctx.charge(cfg_.cost.fiber_switch);
  f.fn(ctx);
  ++f.activations;

  node.eu_free = at + ctx.charged();
  stats_.node[node_id].eu_busy += ctx.charged();
  ++stats_.node[node_id].fibers_run;
  stats_.makespan = std::max(stats_.makespan, node.eu_free);
  if (cfg_.trace)
    trace_.record(TraceRecord{at, node.eu_free, node_id,
                              TraceRecord::Kind::Fiber, f.name});

  if (!node.ready.empty())
    push_event(make_try_dispatch(node.eu_free, node_id));
}

void EarthMachine::op_sync(FiberContext& ctx, FiberId target) {
  // A sync signal is a tiny message; model it as a 16-byte send.
  op_send(ctx, target, 16, {});
}

Cycles EarthMachine::route(NodeId src, Cycles at, std::uint64_t bytes) {
  Node& snode = nodes_[src];
  const Cycles start_tx = std::max(at, snode.port_free);
  const auto transfer = static_cast<Cycles>(std::llround(
      std::ceil(static_cast<double>(bytes) / cfg_.net.bytes_per_cycle)));
  snode.port_free = start_tx + cfg_.net.inject_overhead + transfer;
  ++stats_.node[src].msgs_sent;
  stats_.node[src].bytes_sent += bytes;
  return snode.port_free + cfg_.net.latency;
}

NodeId EarthMachine::pick_spawn_node() {
  if (cfg_.spawn_policy == SpawnPolicy::RoundRobin)
    return (spawn_rr_++) % cfg_.num_nodes;
  NodeId best = 0;
  std::uint64_t best_load = ~std::uint64_t{0};
  for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
    const std::uint64_t load =
        nodes_[n].ready.size() + nodes_[n].tokens_in_flight +
        (nodes_[n].eu_free > stats_.makespan ? 1 : 0);
    if (load < best_load) {
      best = n;
      best_load = load;
    }
  }
  return best;
}

FiberId EarthMachine::op_spawn(FiberContext& ctx, NodeId node,
                               std::uint32_t sync_count, FiberFn fn,
                               std::string name) {
  ER_EXPECTS_MSG(static_cast<bool>(fn), "fiber body must be callable");
  const NodeId dst = node == kAnyNode ? pick_spawn_node() : node;
  ER_EXPECTS(dst < cfg_.num_nodes);
  Fiber f;
  f.node = dst;
  f.sync_count = sync_count;
  f.remaining = static_cast<std::int64_t>(sync_count);
  f.fn = std::move(fn);
  f.name = std::move(name);
  fibers_.push_back(std::move(f));
  const FiberId fid{static_cast<std::uint32_t>(fibers_.size() - 1)};
  ++nodes_[dst].tokens_in_flight;

  ctx.charge(cfg_.cost.op_issue);
  const Cycles issue = ctx.now();
  Event ev;
  ev.kind = Event::Kind::Token;
  ev.target = fid;
  if (dst == ctx.node()) {
    ev.time = issue;
    push_event(std::move(ev));
  } else {
    ev.time = route(ctx.node(), issue, cfg_.spawn_token_bytes);
    post_remote(ctx.node(), dst, MsgKind::Token, std::move(ev));
  }
  return fid;
}

void EarthMachine::op_get(FiberContext& ctx, NodeId from,
                          std::uint64_t bytes,
                          std::function<std::function<void()>()> fetch,
                          FiberId target) {
  ER_EXPECTS(from < cfg_.num_nodes);
  ER_EXPECTS(target.value < fibers_.size());
  ER_EXPECTS_MSG(static_cast<bool>(fetch), "get() needs a fetch closure");
  ctx.charge(cfg_.cost.op_issue);
  const Cycles issue = ctx.now();
  // Request message (small) to the remote node; the response is scheduled
  // by process_get_request when the request is handled there.
  Event ev;
  ev.kind = Event::Kind::GetRequest;
  ev.target = target;
  ev.fetch = std::move(fetch);
  ev.reply_to = ctx.node();
  ev.node = from;
  ev.bytes = bytes;
  if (from == ctx.node()) {
    ev.time = issue;
    push_event(std::move(ev));
  } else {
    ev.time = route(ctx.node(), issue, 16);
    post_remote(ctx.node(), from, MsgKind::GetRequest, std::move(ev));
  }
}

void EarthMachine::op_timer(FiberContext& ctx, FiberId target, Cycles delay,
                            std::shared_ptr<const std::uint64_t> gen) {
  ER_EXPECTS(target.value < fibers_.size());
  ER_EXPECTS_MSG(fibers_[target.value].node == ctx.node(),
                 "timers are local: target must live on the arming node");
  ctx.charge(cfg_.cost.op_issue);
  Event ev;
  ev.time = ctx.now() + delay;
  ev.kind = Event::Kind::Timer;
  ev.target = target;
  if (gen) {
    ev.timer_gen_snapshot = *gen;
    ev.timer_gen = std::move(gen);
  }
  push_event(std::move(ev));
}

void EarthMachine::process_token(const Event& ev) {
  Fiber& f = fibers_[ev.target.value];
  Node& node = nodes_[f.node];
  if (node.tokens_in_flight > 0) --node.tokens_in_flight;
  const Cycles start = std::max(ev.time, node.su_free);
  node.su_free = start + cfg_.cost.su_event;
  stats_.node[f.node].su_busy += cfg_.cost.su_event;
  ++stats_.node[f.node].su_events;
  stats_.makespan = std::max(stats_.makespan, node.su_free);
  if (f.sync_count == 0) {
    node.ready.push_back(ev.target);
    push_event(make_try_dispatch(node.su_free, f.node));
  }
}

void EarthMachine::process_get_request(const Event& ev) {
  // Handled by the remote node's SU: sample state, send the response.
  Node& rnode = nodes_[ev.node];
  const Cycles start = std::max(ev.time, rnode.su_free);
  rnode.su_free = start + cfg_.cost.su_event;
  stats_.node[ev.node].su_busy += cfg_.cost.su_event;
  ++stats_.node[ev.node].su_events;
  stats_.makespan = std::max(stats_.makespan, rnode.su_free);

  std::function<void()> applier = ev.fetch();
  Event resp;
  resp.kind = Event::Kind::Deliver;
  resp.target = ev.target;
  resp.deliver = std::move(applier);
  resp.bytes = ev.bytes;
  if (ev.node == ev.reply_to) {
    resp.time = rnode.su_free;
    push_event(std::move(resp));
  } else {
    resp.time = route(ev.node, rnode.su_free, ev.bytes);
    post_remote(ev.node, ev.reply_to, MsgKind::GetReply, std::move(resp));
  }
}

void EarthMachine::op_send(FiberContext& ctx, FiberId target,
                           std::uint64_t bytes,
                           std::function<void()> deliver) {
  ER_EXPECTS(target.value < fibers_.size());
  ctx.charge(cfg_.cost.op_issue);
  const Cycles issue = ctx.now();
  const NodeId src = ctx.node();
  const NodeId dst = fibers_[target.value].node;

  // Local operations skip the network; remote ones serialize on the
  // sender's outgoing port and pay injection + transfer + latency.
  //
  // Port bookkeeping in route() is done eagerly rather than via a
  // separate event: events are processed in global time order and issue
  // times within a node are nondecreasing, so eager accounting follows
  // simulated time order per node.
  Event ev;
  ev.kind = Event::Kind::Deliver;
  ev.target = target;
  ev.deliver = std::move(deliver);
  ev.bytes = bytes;
  if (src == dst) {
    ev.time = issue;
    push_event(std::move(ev));
  } else {
    ev.time = route(src, issue, bytes);
    post_remote(src, dst, MsgKind::Send, std::move(ev));
  }
}

void EarthMachine::mem_access(FiberContext& ctx, ArrayTag tag,
                              std::uint64_t index, std::uint32_t elem_bytes) {
  Node& node = nodes_[ctx.node()];
  const bool hit = node.cache.access(mem_addr(tag, index, elem_bytes));
  ctx.charge(hit ? cfg_.cost.cache_hit : cfg_.cost.cache_miss);
}

}  // namespace earthred::earth
