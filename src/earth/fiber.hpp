// Fibers and the context handed to a running fiber body.
//
// A fiber is EARTH's unit of non-preemptive computation. In this simulator
// a fiber's body is ordinary C++ code that performs the *real* computation
// (so results can be validated against sequential references) while
// charging simulated cycles for the work it does: arithmetic through
// charge_flops/charge_intops, memory references through load/store (which
// consult the node's cache model), and EARTH operations through sync/send.
//
// EARTH semantics preserved by the model:
//   * a fiber becomes ready when its sync slot reaches zero, and the slot
//     then re-arms with its reset count (fibers are persistent and may fire
//     many times — e.g. once per phase per sweep);
//   * fibers are non-preemptive: the EU runs one fiber to completion;
//   * EARTH operations are split-phase: the issuing fiber pays only a small
//     issue cost, and the SU / network complete the operation
//     asynchronously — this is what makes communication/computation
//     overlap possible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "earth/cost.hpp"
#include "earth/types.hpp"

namespace earthred::earth {

class EarthMachine;
class FiberContext;

/// A fiber body. Runs once per activation.
using FiberFn = std::function<void(FiberContext&)>;

/// Execution context passed to a fiber body; valid only during the call.
///
/// A *detached* context (FiberContext::detached()) is not bound to a
/// machine: cost charges accumulate in the context but memory accesses
/// consult no cache and EARTH operations are forbidden. The native
/// thread-pool engine uses detached contexts to run kernels outside the
/// simulator.
class FiberContext {
 public:
  /// Creates a machine-less context (see class comment).
  static FiberContext detached(NodeId node = 0) noexcept {
    return FiberContext(nullptr, node, FiberId{}, 0, 0);
  }

  /// True when bound to a simulated machine.
  bool attached() const noexcept { return machine_ != nullptr; }

  /// Node the fiber is executing on.
  NodeId node() const noexcept { return node_; }

  /// Identity of the executing fiber.
  FiberId self() const noexcept { return self_; }

  /// Number of previous activations of this fiber (0 on the first firing).
  std::uint64_t activation() const noexcept { return activation_; }

  /// Simulated time: dispatch time plus cycles charged so far.
  Cycles now() const noexcept { return start_ + charged_; }

  /// Cycles charged by this activation so far.
  Cycles charged() const noexcept { return charged_; }

  // --- cost accounting -----------------------------------------------
  void charge(Cycles c) noexcept { charged_ += c; }
  void charge_flops(std::uint64_t n) noexcept;
  void charge_intops(std::uint64_t n) noexcept;

  /// Models a data load/store of element `index` of array `tag`; charges
  /// hit or miss latency against this node's cache.
  void load(ArrayTag tag, std::uint64_t index, std::uint32_t elem_bytes = 8);
  void store(ArrayTag tag, std::uint64_t index, std::uint32_t elem_bytes = 8);

  // --- EARTH operations ----------------------------------------------
  /// Signals the sync slot of `target` (possibly on another node).
  void sync(FiberId target);

  /// Sends `bytes` of data to `target`'s node and signals `target`'s slot
  /// on arrival. `deliver` (optional) is executed at the simulated arrival
  /// time, before the sync fires — use it to perform the actual data copy
  /// so program state respects simulated message ordering.
  void send(FiberId target, std::uint64_t bytes,
            std::function<void()> deliver = {});

  /// Spawns a threaded procedure: registers a new fiber on `node` (or a
  /// load-balancer-chosen node for kAnyNode) and ships the invocation
  /// token there. A fiber spawned with `sync_count == 0` becomes ready
  /// when the token arrives; with a positive count it waits for that many
  /// sync signals as usual. Returns the new fiber's id immediately so the
  /// spawner can wire further signals to it.
  FiberId spawn(NodeId node, std::uint32_t sync_count, FiberFn fn,
                std::string name = {});

  /// Split-phase remote read (EARTH GET_SYNC): sends a request to `from`;
  /// when it arrives there, `fetch` runs (sampling remote state at that
  /// simulated time) and returns an applier; the applier runs when the
  /// response arrives back here, after which `target`'s slot is signaled.
  void get(NodeId from, std::uint64_t bytes,
           std::function<std::function<void()>()> fetch, FiberId target);

  /// Arms a local timer: `target`'s slot (which must live on this node) is
  /// signaled `delay` cycles from now. Timers never touch the network and
  /// are immune to faults. If `gen` is provided, the timer is cancelled
  /// when the pointed-to generation counter changes before expiry; a
  /// cancelled timer is skipped entirely and does not advance simulated
  /// time — the mechanism retransmit watchdogs use so that an ack arriving
  /// on time leaves no trace of the armed timeout.
  void timer(FiberId target, Cycles delay,
             std::shared_ptr<const std::uint64_t> gen = {});

 private:
  friend class EarthMachine;
  FiberContext(EarthMachine* m, NodeId node, FiberId self, Cycles start,
               std::uint64_t activation) noexcept
      : machine_(m), node_(node), self_(self), start_(start),
        activation_(activation) {}

  EarthMachine* machine_;
  NodeId node_;
  FiberId self_;
  Cycles start_;
  std::uint64_t activation_;
  Cycles charged_ = 0;
};

}  // namespace earthred::earth
