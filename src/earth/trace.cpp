#include "earth/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/check.hpp"
#include "support/str.hpp"

namespace earthred::earth {

void Trace::dump_csv(std::ostream& os) const {
  os << "start,end,node,kind,label\n";
  for (const TraceRecord& r : records_) {
    const char* kind = r.kind == TraceRecord::Kind::Fiber ? "fiber"
                       : r.kind == TraceRecord::Kind::SuEvent ? "su"
                                                              : "fault";
    os << r.start << ',' << r.end << ',' << r.node << ',' << kind << ','
       << r.label << '\n';
  }
}

std::string Trace::render_gantt(std::uint32_t num_nodes,
                                std::uint32_t width) const {
  ER_EXPECTS(width >= 1);
  Cycles horizon = 1;
  for (const TraceRecord& r : records_) horizon = std::max(horizon, r.end);

  // busy[node][bucket] accumulates EU-busy cycles.
  std::vector<std::vector<double>> busy(
      num_nodes, std::vector<double>(width, 0.0));
  const double bucket_cycles =
      static_cast<double>(horizon) / static_cast<double>(width);
  for (const TraceRecord& r : records_) {
    if (r.kind != TraceRecord::Kind::Fiber || r.node >= num_nodes) continue;
    const auto b0 = static_cast<std::uint32_t>(
        static_cast<double>(r.start) / bucket_cycles);
    const auto b1 = std::min<std::uint32_t>(
        width - 1,
        static_cast<std::uint32_t>(static_cast<double>(r.end) /
                                   bucket_cycles));
    for (std::uint32_t b = b0; b <= b1; ++b) {
      const double lo = std::max(static_cast<double>(r.start),
                                 b * bucket_cycles);
      const double hi = std::min(static_cast<double>(r.end),
                                 (b + 1) * bucket_cycles);
      if (hi > lo) busy[r.node][b] += hi - lo;
    }
  }

  static constexpr char kGlyphs[] = " .:+#";
  std::ostringstream os;
  os << "EU timeline, " << fmt_group(static_cast<long long>(horizon))
     << " cycles across " << width << " buckets ('#' = busy)\n";
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    os << pad_left(std::to_string(n), 3) << " |";
    for (std::uint32_t b = 0; b < width; ++b) {
      const double frac =
          std::clamp(busy[n][b] / bucket_cycles, 0.0, 1.0);
      os << kGlyphs[static_cast<std::size_t>(frac * 4.0 + 0.5)];
    }
    os << "|\n";
  }
  return os.str();
}

}  // namespace earthred::earth
