// Memory-reference helpers for the EU cost model.
//
// Kernels running inside fibers charge their work through the FiberContext
// (flops, index ops, and memory references). A memory reference is a
// synthetic address composed from an array tag and a byte offset; each node
// resolves it against its private CacheModel. Two nodes touching the same
// (tag, offset) do NOT interfere — every node has its own cache, matching
// the distributed-memory reality of EARTH where each node holds local
// copies / portions of the arrays.
#pragma once

#include <cstdint>

namespace earthred::earth {

/// Identifies one logical array for address synthesis. Allocate tags with
/// ArrayTagAllocator (or pick small distinct constants in tests).
struct ArrayTag {
  std::uint32_t value = 0;
};

/// Synthesizes the address of element `index` (of `elem_bytes` each) in the
/// array `tag`. Tags are placed 2^28 bytes apart — far beyond any modeled
/// array — so distinct arrays never alias.
constexpr std::uint64_t mem_addr(ArrayTag tag, std::uint64_t index,
                                 std::uint32_t elem_bytes) noexcept {
  return (static_cast<std::uint64_t>(tag.value) << 28) + index * elem_bytes;
}

/// Hands out distinct array tags.
class ArrayTagAllocator {
 public:
  ArrayTag next() noexcept { return ArrayTag{counter_++}; }

 private:
  std::uint32_t counter_ = 1;
};

}  // namespace earthred::earth
