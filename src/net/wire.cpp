#include "net/wire.hpp"

#include <cstring>

#include "net/stream.hpp"
#include "support/str.hpp"

namespace earthred::net {

namespace {

bool known_type(std::uint32_t t, std::uint32_t version) {
  // Drain arrived in v2: inside a v1 header it is exactly as unknown as
  // it would be to a real v1 peer.
  const auto last = version <= kVersionNoDrain ? FrameType::Reject
                                               : FrameType::Drain;
  return t >= static_cast<std::uint32_t>(FrameType::Ping) &&
         t <= static_cast<std::uint32_t>(last);
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::Ping: return "ping";
    case FrameType::Pong: return "pong";
    case FrameType::Submit: return "submit";
    case FrameType::Result: return "result";
    case FrameType::Reject: return "reject";
    case FrameType::Drain: return "drain";
  }
  return "?";
}

std::vector<std::byte> encode_frame(FrameType type, std::uint64_t seq,
                                    std::span<const std::byte> payload) {
  support::ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u32(static_cast<std::uint32_t>(type));
  w.u32(0);  // reserved
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(0);  // pad
  w.u64(support::fast_hash64(payload.data(), payload.size()));
  w.raw(payload.data(), payload.size());
  return {w.bytes().begin(), w.bytes().end()};
}

HeaderParse parse_header(std::span<const std::byte> header,
                         std::uint32_t max_payload) {
  HeaderParse h;
  if (header.size() < kHeaderBytes) {
    h.code = "E-NET-TRUNCATED";
    h.detail = strformat("header is %zu bytes, need %zu", header.size(),
                         kHeaderBytes);
    return h;
  }
  support::ByteReader r(header.first(kHeaderBytes));
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  const std::uint32_t type = r.u32();
  const std::uint32_t reserved = r.u32();
  h.seq = r.u64();
  h.payload_len = r.u32();
  const std::uint32_t pad = r.u32();
  h.checksum = r.u64();
  if (magic != kMagic) {
    h.code = "E-NET-MAGIC";
    h.detail = strformat("bad magic 0x%08x (want 0x%08x)", magic, kMagic);
    return h;
  }
  h.version = version;
  if (version > kVersion) {
    h.code = "E-NET-VERSION";
    h.detail = strformat("protocol version %u is newer than supported %u",
                         version, kVersion);
    return h;
  }
  if (!known_type(type, version)) {
    h.code = "E-NET-TYPE";
    h.detail = strformat("unknown frame type %u", type);
    return h;
  }
  h.type = static_cast<FrameType>(type);
  if (reserved != 0 || pad != 0) {
    h.code = "E-NET-RESERVED";
    h.detail = "nonzero reserved bits in header";
    return h;
  }
  if (h.payload_len > max_payload) {
    h.code = "E-NET-OVERSIZE";
    h.detail = strformat("payload of %u bytes exceeds the %u-byte limit",
                         h.payload_len, max_payload);
    return h;
  }
  return h;
}

bool payload_checksum_ok(const HeaderParse& h,
                         std::span<const std::byte> payload) {
  return support::fast_hash64(payload.data(), payload.size()) == h.checksum;
}

std::string classify_frame_bytes(std::span<const std::byte> bytes,
                                 std::uint32_t max_payload,
                                 std::string* detail) {
  const HeaderParse h = parse_header(bytes, max_payload);
  if (!h.ok()) {
    if (detail) *detail = h.detail;
    return h.code;
  }
  if (bytes.size() < kHeaderBytes + h.payload_len) {
    if (detail)
      *detail = strformat("frame ends after %zu of %zu payload bytes",
                          bytes.size() - kHeaderBytes,
                          static_cast<std::size_t>(h.payload_len));
    return "E-NET-TRUNCATED";
  }
  if (!payload_checksum_ok(h, bytes.subspan(kHeaderBytes, h.payload_len))) {
    if (detail) *detail = "payload checksum mismatch";
    return "E-NET-CHECKSUM";
  }
  if (detail) detail->clear();
  return {};
}

FrameRead read_frame(Stream& s, std::uint32_t max_payload, int timeout_ms) {
  FrameRead f;
  std::byte header[kHeaderBytes];
  IoResult io = read_exact(s, header, kHeaderBytes, timeout_ms);
  if (!io.ok()) {
    // A clean EOF before any header byte is the peer closing between
    // frames, not a truncated frame; surface it as a connection end.
    f.code = (io.status == IoResult::Status::Eof && io.bytes == 0)
                 ? "E-NET-CONN"
                 : io.code();
    f.detail = io.error.empty()
                   ? strformat("stream ended after %zu header byte(s)",
                               io.bytes)
                   : io.error;
    return f;
  }
  const HeaderParse h = parse_header({header, kHeaderBytes}, max_payload);
  if (!h.ok()) {
    f.code = h.code;
    f.detail = h.detail;
    return f;
  }
  f.type = h.type;
  f.seq = h.seq;
  f.payload.resize(h.payload_len);
  if (h.payload_len > 0) {
    io = read_exact(s, f.payload.data(), h.payload_len, timeout_ms);
    if (!io.ok()) {
      f.code = io.code();
      f.detail = io.error.empty()
                     ? strformat("stream ended after %zu of %u payload "
                                 "byte(s)",
                                 io.bytes, h.payload_len)
                     : io.error;
      return f;
    }
  }
  if (!payload_checksum_ok(h, f.payload)) {
    f.code = "E-NET-CHECKSUM";
    f.detail = "payload checksum mismatch";
    f.payload.clear();
  }
  return f;
}

std::string write_frame(Stream& s, FrameType type, std::uint64_t seq,
                        std::span<const std::byte> payload, int timeout_ms,
                        std::string* detail) {
  const std::vector<std::byte> frame = encode_frame(type, seq, payload);
  const IoResult io = s.write_all(frame.data(), frame.size(), timeout_ms);
  if (io.ok()) return {};
  if (detail)
    *detail = io.error.empty()
                  ? strformat("wrote %zu of %zu frame byte(s)", io.bytes,
                              frame.size())
                  : io.error;
  return io.code();
}

void put_string(support::ByteWriter& w, std::string_view s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.raw(s.data(), s.size());
}

std::string get_string(support::ByteReader& r, std::size_t max_len) {
  const std::uint32_t len = r.u32();
  if (r.fail()) return {};
  if (len > max_len || len > r.remaining()) {
    // Poison the reader so callers that only check fail() at the end see
    // the bad length (raw past the end sets the sticky flag, copies
    // nothing).
    r.raw(nullptr, r.remaining() + 1);
    return {};
  }
  std::string s(len, '\0');
  if (!r.raw(s.data(), len)) return {};
  return s;
}

std::vector<std::byte> encode_reject(const RejectBody& b) {
  support::ByteWriter w;
  put_string(w, b.code);
  put_string(w, b.detail);
  return {w.bytes().begin(), w.bytes().end()};
}

bool decode_reject(std::span<const std::byte> payload, RejectBody* out) {
  support::ByteReader r(payload);
  out->code = get_string(r);
  out->detail = get_string(r);
  return !r.fail();
}

std::vector<std::byte> encode_result(const ResultBody& b) {
  support::ByteWriter w;
  w.u32(b.state);
  w.u32(b.cache_hit);
  w.u32(b.plan_source);
  w.u32(b.flags);
  w.f64(b.queue_seconds);
  w.f64(b.setup_seconds);
  w.f64(b.exec_seconds);
  w.f64(b.total_seconds);
  w.u64(b.digest);
  put_string(w, b.name);
  put_string(w, b.error);
  return {w.bytes().begin(), w.bytes().end()};
}

bool decode_result(std::span<const std::byte> payload, ResultBody* out) {
  support::ByteReader r(payload);
  out->state = r.u32();
  out->cache_hit = r.u32();
  out->plan_source = r.u32();
  out->flags = r.u32();
  out->queue_seconds = r.f64();
  out->setup_seconds = r.f64();
  out->exec_seconds = r.f64();
  out->total_seconds = r.f64();
  out->digest = r.u64();
  out->name = get_string(r);
  out->error = get_string(r);
  return !r.fail();
}

std::vector<std::byte> encode_pong(const PongBody& b) {
  support::ByteWriter w;
  w.u64(b.queue_depth);
  w.u64(b.in_flight);
  w.u64(b.completed);
  w.u64(b.rejected);
  w.u32(b.draining);
  w.u32(b.version);
  w.u64(b.cache_entries);
  w.u64(b.cache_key_digest);
  w.u64(b.cache_hits);
  return {w.bytes().begin(), w.bytes().end()};
}

bool decode_pong(std::span<const std::byte> payload, PongBody* out) {
  support::ByteReader r(payload);
  out->queue_depth = r.u64();
  out->in_flight = r.u64();
  out->completed = r.u64();
  out->rejected = r.u64();
  out->draining = r.u32();
  out->version = r.u32();
  if (r.fail()) return false;
  // Trailing cache fields are v2 additions; a v1 pong simply ends here
  // and they stay zero.
  if (r.remaining() >= 3 * sizeof(std::uint64_t)) {
    out->cache_entries = r.u64();
    out->cache_key_digest = r.u64();
    out->cache_hits = r.u64();
  } else {
    out->cache_entries = 0;
    out->cache_key_digest = 0;
    out->cache_hits = 0;
  }
  return !r.fail();
}

}  // namespace earthred::net
