#include "net/stream.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "support/str.hpp"

namespace earthred::net {

namespace {

using Clock = std::chrono::steady_clock;

int ms_left(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

IoResult io_error(const char* what) {
  IoResult r;
  r.status = IoResult::Status::Error;
  r.error = strformat("%s: %s", what, std::strerror(errno));
  return r;
}

/// Resolves the tiny host grammar the service needs (numeric IPv4 or
/// "localhost"); no DNS, so nothing here can block.
bool parse_addr(const std::string& host, std::uint16_t port,
                sockaddr_in* out, std::string* error) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  const std::string h =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, h.c_str(), &out->sin_addr) != 1) {
    if (error)
      *error = "unsupported address '" + host + "' (numeric IPv4 only)";
    return false;
  }
  return true;
}

}  // namespace

IoResult read_exact(Stream& s, void* buf, std::size_t n, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t got = 0;
  while (got < n) {
    IoResult r = s.read_some(static_cast<char*>(buf) + got, n - got,
                             ms_left(deadline));
    if (!r.ok()) {
      r.bytes = got + r.bytes;
      return r;
    }
    got += r.bytes;
  }
  IoResult r;
  r.bytes = got;
  return r;
}

// ---- TcpStream ---------------------------------------------------------

TcpStream::TcpStream(int fd) : fd_(fd) { set_nonblocking(fd_); }

TcpStream::~TcpStream() { close(); }

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<TcpStream> TcpStream::connect(const std::string& host,
                                              std::uint16_t port,
                                              int timeout_ms,
                                              std::string* error) {
  sockaddr_in addr;
  if (!parse_addr(host, port, &addr, error)) return nullptr;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = strformat("socket: %s", std::strerror(errno));
    return nullptr;
  }
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    if (error) *error = strformat("connect: %s", std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  pollfd p{fd, POLLOUT, 0};
  const int rc = ::poll(&p, 1, timeout_ms);
  if (rc <= 0) {
    if (error)
      *error = rc == 0 ? "connect timed out"
                       : strformat("poll: %s", std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  int soerr = 0;
  socklen_t len = sizeof(soerr);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
      soerr != 0) {
    if (error) *error = strformat("connect: %s", std::strerror(soerr));
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<TcpStream>(new TcpStream(fd));
}

IoResult TcpStream::read_some(void* buf, std::size_t n, int timeout_ms) {
  IoResult r;
  if (fd_ < 0) {
    r.status = IoResult::Status::Error;
    r.error = "stream is closed";
    return r;
  }
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, n, 0);
    if (got > 0) {
      r.bytes = static_cast<std::size_t>(got);
      return r;
    }
    if (got == 0) {
      r.status = IoResult::Status::Eof;
      return r;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return io_error("recv");
    pollfd p{fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc == 0) {
      r.status = IoResult::Status::Timeout;
      return r;
    }
    if (rc < 0 && errno != EINTR) return io_error("poll");
    timeout_ms = 0;  // one poll round: data is ready or we report Timeout
  }
}

IoResult TcpStream::write_all(const void* buf, std::size_t n,
                              int timeout_ms) {
  IoResult r;
  if (fd_ < 0) {
    r.status = IoResult::Status::Error;
    r.error = "stream is closed";
    return r;
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t put = ::send(fd_, static_cast<const char*>(buf) + sent,
                               n - sent, MSG_NOSIGNAL);
    if (put > 0) {
      sent += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      r = io_error("send");
      r.bytes = sent;
      return r;
    }
    pollfd p{fd_, POLLOUT, 0};
    const int rc = ::poll(&p, 1, ms_left(deadline));
    if (rc == 0) {
      r.status = IoResult::Status::Timeout;
      r.bytes = sent;
      return r;
    }
    if (rc < 0 && errno != EINTR) {
      r = io_error("poll");
      r.bytes = sent;
      return r;
    }
  }
  r.bytes = sent;
  return r;
}

int tcp_listen(const std::string& host, std::uint16_t port, int backlog,
               std::string* error) {
  sockaddr_in addr;
  if (!parse_addr(host, port, &addr, error)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = strformat("socket: %s", std::strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = strformat("bind: %s", std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    if (error) *error = strformat("listen: %s", std::strerror(errno));
    ::close(fd);
    return -1;
  }
  set_nonblocking(fd);
  return fd;
}

std::uint16_t tcp_local_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

// ---- FaultyStream ------------------------------------------------------

FaultyStream::FaultyStream(std::unique_ptr<Stream> inner,
                           ByteFaultConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg), rng_(cfg.seed) {}

void FaultyStream::close() { inner_->close(); }

bool FaultyStream::maybe_die(std::size_t about_to_transfer) {
  if (dead_) return true;
  if (cfg_.die_after_bytes > 0 &&
      transferred_ + about_to_transfer > cfg_.die_after_bytes) {
    dead_ = true;
    ++stats_.died;
    inner_->close();
    return true;
  }
  return false;
}

IoResult FaultyStream::read_some(void* buf, std::size_t n, int timeout_ms) {
  if (maybe_die(1)) {
    IoResult r;
    r.status = IoResult::Status::Eof;  // peer died: the socket just ends
    return r;
  }
  std::size_t want = n;
  if (cfg_.short_read > 0.0 && n > 1 && rng_.chance(cfg_.short_read)) {
    ++stats_.short_reads;
    want = 1 + rng_.below(n - 1);
  }
  IoResult r = inner_->read_some(buf, want, timeout_ms);
  transferred_ += r.bytes;
  return r;
}

IoResult FaultyStream::write_all(const void* buf, std::size_t n,
                                 int timeout_ms) {
  IoResult r;
  if (maybe_die(n)) {
    r.status = IoResult::Status::Error;
    r.error = "peer died (injected)";
    return r;
  }
  if (cfg_.drop > 0.0 && rng_.chance(cfg_.drop)) {
    // The bytes vanish: the caller believes they were sent, the peer
    // never sees them — the stream-layer analogue of a dropped packet,
    // which desynchronizes framing until the connection is torn down.
    ++stats_.dropped;
    r.bytes = n;
    transferred_ += n;
    return r;
  }
  if (cfg_.delay > 0.0 && rng_.chance(cfg_.delay)) {
    ++stats_.delayed;
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.delay_ms));
  }
  if (cfg_.corrupt > 0.0 && n > 0 && rng_.chance(cfg_.corrupt)) {
    ++stats_.corrupted;
    std::vector<char> copy(static_cast<const char*>(buf),
                           static_cast<const char*>(buf) + n);
    copy[rng_.below(n)] ^= static_cast<char>(1u << rng_.below(8));
    r = inner_->write_all(copy.data(), n, timeout_ms);
    transferred_ += r.bytes;
    return r;
  }
  r = inner_->write_all(buf, n, timeout_ms);
  transferred_ += r.bytes;
  if (r.ok() && cfg_.duplicate > 0.0 && rng_.chance(cfg_.duplicate)) {
    ++stats_.duplicated;
    (void)inner_->write_all(buf, n, timeout_ms);
  }
  return r;
}

}  // namespace earthred::net
