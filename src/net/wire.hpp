// Wire protocol for the networked reduction service.
//
// Every exchange is a length-prefixed, versioned binary *frame*:
//
//   offset  size  field
//        0     4  magic      "ERT1" (0x31545245 little-endian)
//        4     4  version    protocol version (kVersion)
//        8     4  type       FrameType
//       12     4  reserved   must be 0
//       16     8  seq        caller-assigned id, echoed in the response
//       24     4  payload_len
//       28     4  pad        must be 0
//       32     8  checksum   support::fast_hash64 of the payload bytes
//       40     —  payload
//
// All integers are little-endian (support/binio conventions). The header
// is fixed-size so a reader can validate magic/version/type/length before
// committing to read — or even allocate — the payload; `payload_len` is
// bounded by the receiver's configured maximum and an oversized frame is
// rejected *from the header alone* (E-NET-OVERSIZE), never buffered.
//
// Frame types:
//   Ping    -> Pong       health probe; Pong carries a ServeLoop snapshot
//   Submit  -> Result     job line in, terminal JobOutcome summary out
//           -> Reject     the request never reached the scheduler: a
//                         coded transport/admission refusal (overload
//                         shed, drain, parse failure, malformed frame)
//   Drain   -> Pong       control frame (v2): begin a graceful drain and
//                         acknowledge with a snapshot (draining=1); the
//                         shard router fans it out fleet-wide, shards
//                         first, itself last
//
// Versioning: v2 added Drain plus trailing PongBody fields (plan-cache
// entry count / key digest / hits). A v2 receiver accepts v1 frames —
// Drain inside a v1 header is refused (E-NET-TYPE, the code a genuine v1
// peer would produce) and a short v1 Pong payload decodes with the new
// fields zeroed. Frames from the future (version > kVersion) are still
// rejected whole with E-NET-VERSION.
//
// Error codes (the `E-NET-*` catalog — docs/architecture.md section 12
// tables fault -> detection -> client-visible outcome):
//   E-NET-MAGIC     bad magic (stream desync or not our protocol)
//   E-NET-VERSION   protocol version newer than this build understands
//   E-NET-TYPE      unknown frame type
//   E-NET-RESERVED  nonzero reserved/pad bits (future-proofing)
//   E-NET-OVERSIZE  payload_len exceeds the configured frame limit
//   E-NET-CHECKSUM  payload hash mismatch (corruption in flight)
//   E-NET-TRUNCATED stream ended mid-frame
//   E-NET-TIMEOUT   read/write deadline exceeded
//   E-NET-CONN      connect/reset/IO failure
//   E-NET-PROTO     well-formed but unexpected frame (wrong seq/type)
//   E-NET-MAXCONN   server connection limit reached (shed at accept)
//   E-NET-BUSY      server inflight-job limit reached (shed at submit)
//   E-NET-DRAINING  server is draining and no longer accepts work
//   E-NET-CIRCUIT   client-side circuit breaker is open (fail-fast)
//
// Rejections are *always* delivered as a Reject frame carrying the code
// and a human-readable detail — an overloaded or draining server sheds
// load with a reasoned refusal, never a silent drop or a hang.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/binio.hpp"

namespace earthred::net {

inline constexpr std::uint32_t kMagic = 0x31545245u;  // "ERT1"
inline constexpr std::uint32_t kVersion = 2;
/// The last protocol version that did not know the Drain frame.
inline constexpr std::uint32_t kVersionNoDrain = 1;
inline constexpr std::size_t kHeaderBytes = 40;
/// Default ceiling on a frame payload; receivers may configure lower.
inline constexpr std::uint32_t kDefaultMaxPayload = 1u << 20;

enum class FrameType : std::uint32_t {
  Ping = 1,
  Pong = 2,
  Submit = 3,
  Result = 4,
  Reject = 5,
  Drain = 6,  ///< v2+: graceful-drain control frame (empty payload)
};

const char* to_string(FrameType t);

/// Outcome of validating a 40-byte header (before the payload is read).
struct HeaderParse {
  std::string code;    ///< empty = valid; else an E-NET-* code
  std::string detail;  ///< human-readable elaboration of `code`
  FrameType type = FrameType::Ping;
  std::uint64_t seq = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t checksum = 0;
  std::uint32_t version = kVersion;  ///< the sender's protocol version
  bool ok() const { return code.empty(); }
};

/// Encodes a complete frame (header + payload).
std::vector<std::byte> encode_frame(FrameType type, std::uint64_t seq,
                                    std::span<const std::byte> payload);

/// Validates the fixed header. `header` must hold >= kHeaderBytes;
/// `max_payload` bounds payload_len. Never throws.
HeaderParse parse_header(std::span<const std::byte> header,
                         std::uint32_t max_payload);

/// True when `payload` hashes to the checksum the header promised.
bool payload_checksum_ok(const HeaderParse& h,
                         std::span<const std::byte> payload);

/// Classifies an arbitrary byte blob as one frame: header validation,
/// then completeness, then payload checksum. Returns the empty string for
/// a well-formed frame, else the E-NET-* code — this is the function the
/// malformed-frame corpus (examples/frames/bad/) is pinned against.
std::string classify_frame_bytes(std::span<const std::byte> bytes,
                                 std::uint32_t max_payload,
                                 std::string* detail = nullptr);

// ---- frame transport over a Stream -------------------------------------

class Stream;

/// One fully received and validated frame, or the E-NET-* code that ended
/// the read (header validation failure, checksum mismatch, timeout, EOF).
struct FrameRead {
  std::string code;    ///< empty = `type`/`seq`/`payload` are valid
  std::string detail;
  FrameType type = FrameType::Ping;
  std::uint64_t seq = 0;
  std::vector<std::byte> payload;
  bool ok() const { return code.empty(); }
};

/// Reads exactly one frame (header, then the promised payload) within
/// timeout_ms, verifying the payload checksum.
FrameRead read_frame(Stream& s, std::uint32_t max_payload, int timeout_ms);

/// Writes one complete frame within timeout_ms; returns "" or the E-NET-*
/// code of the failure (detail elaborated via `detail` when non-null).
std::string write_frame(Stream& s, FrameType type, std::uint64_t seq,
                        std::span<const std::byte> payload, int timeout_ms,
                        std::string* detail = nullptr);

// ---- payload encoding helpers ------------------------------------------
// Strings are u32 length + raw bytes (no alignment padding; wire payloads
// are parsed sequentially, never adopted as typed views).

void put_string(support::ByteWriter& w, std::string_view s);
/// Reads a string written by put_string; sets the reader's fail flag (and
/// returns "") on overrun or a length above `max_len`.
std::string get_string(support::ByteReader& r, std::size_t max_len = 1 << 16);

// ---- typed payloads ----------------------------------------------------

/// Reject payload: a coded refusal.
struct RejectBody {
  std::string code;    ///< E-NET-* or E-JOB-* / scheduler codes
  std::string detail;
};
std::vector<std::byte> encode_reject(const RejectBody& b);
bool decode_reject(std::span<const std::byte> payload, RejectBody* out);

/// Result flag bits (`ResultBody::flags`). The field was reserved-zero in
/// v1, so v1 results decode with no flags set.
inline constexpr std::uint32_t kResultFlagRerouted = 1u << 0;

/// Result payload: the terminal summary of one scheduled job. `digest` is
/// service::result_digest over the reduction output, so a client can
/// verify bit-identity against a local run without shipping the arrays.
struct ResultBody {
  std::uint32_t state = 0;  ///< service::JobState as u32
  std::uint32_t cache_hit = 0;
  std::uint32_t plan_source = 0;  ///< service::PlanCache::Outcome as u32
  /// kResultFlag* bits; kResultFlagRerouted marks a result the shard
  /// router obtained from a non-primary shard (breaker open / failover),
  /// so digests stay attributable ("X-rerouted").
  std::uint32_t flags = 0;
  double queue_seconds = 0.0;
  double setup_seconds = 0.0;
  double exec_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint64_t digest = 0;
  std::string name;
  std::string error;
};
std::vector<std::byte> encode_result(const ResultBody& b);
bool decode_result(std::span<const std::byte> payload, ResultBody* out);

/// Pong payload: a health snapshot of the serving process. The trailing
/// cache fields are v2 additions — decode_pong zero-fills them for a
/// short (v1) payload, so mixed fleets still health-check.
struct PongBody {
  std::uint64_t queue_depth = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint32_t draining = 0;
  std::uint32_t version = kVersion;
  /// Resident (ready) PlanCache entries of the serving process.
  std::uint64_t cache_entries = 0;
  /// Order-independent digest over the resident entries' content keys:
  /// the shard's advertised identity, so an operator can see which warm
  /// state lives where (`earthred fleet status`).
  std::uint64_t cache_key_digest = 0;
  std::uint64_t cache_hits = 0;
};
std::vector<std::byte> encode_pong(const PongBody& b);
bool decode_pong(std::span<const std::byte> payload, PongBody* out);

}  // namespace earthred::net
