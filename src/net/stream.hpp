// Byte-stream transport under the wire protocol.
//
//   * Stream      — the minimal blocking-with-deadline byte interface the
//                   client library is written against. Every operation
//                   carries an explicit timeout and reports one of
//                   Ok/Eof/Timeout/Error — there is no call that can hang
//                   forever and no failure that is not distinguishable.
//   * TcpStream   — POSIX sockets implementation (non-blocking fd +
//                   poll(2) per operation, SIGPIPE suppressed).
//   * FaultyStream— the chaos harness: wraps any Stream and applies the
//                   seeded fault model of PR 1's EARTH network layer
//                   (drop / corrupt / duplicate / delay) at the byte
//                   level, plus short reads and scheduled peer death.
//                   Deterministic in its seed, so every chaos test run is
//                   reproducible.
//
// Server-side connections are handled by ServeLoop directly on raw
// non-blocking fds (it multiplexes many of them under one poll set);
// TcpStream is the client-side, one-connection-per-object view.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "support/prng.hpp"

namespace earthred::net {

/// Result of one stream operation.
struct IoResult {
  enum class Status { Ok, Eof, Timeout, Error };
  Status status = Status::Ok;
  std::size_t bytes = 0;  ///< bytes actually transferred
  std::string error;      ///< set for Status::Error
  bool ok() const { return status == Status::Ok; }
  /// Maps the failure to its E-NET-* code ("" for Ok).
  const char* code() const {
    switch (status) {
      case Status::Ok: return "";
      case Status::Eof: return "E-NET-TRUNCATED";
      case Status::Timeout: return "E-NET-TIMEOUT";
      case Status::Error: return "E-NET-CONN";
    }
    return "E-NET-CONN";
  }
};

class Stream {
 public:
  virtual ~Stream() = default;
  /// Reads 1..n bytes, waiting at most timeout_ms for any to arrive.
  virtual IoResult read_some(void* buf, std::size_t n, int timeout_ms) = 0;
  /// Writes all n bytes, spending at most timeout_ms in total.
  virtual IoResult write_all(const void* buf, std::size_t n,
                             int timeout_ms) = 0;
  virtual void close() = 0;
};

/// Reads exactly `n` bytes (looping read_some); EOF mid-way is Eof with
/// `bytes` holding the partial count.
IoResult read_exact(Stream& s, void* buf, std::size_t n, int timeout_ms);

class TcpStream : public Stream {
 public:
  /// Connects to host:port within timeout_ms; nullptr (with `error` set)
  /// on failure. `host` is a numeric IPv4 address or "localhost".
  static std::unique_ptr<TcpStream> connect(const std::string& host,
                                            std::uint16_t port,
                                            int timeout_ms,
                                            std::string* error);
  /// Adopts an already-connected fd (made non-blocking).
  explicit TcpStream(int fd);
  ~TcpStream() override;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  IoResult read_some(void* buf, std::size_t n, int timeout_ms) override;
  IoResult write_all(const void* buf, std::size_t n,
                     int timeout_ms) override;
  void close() override;
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = ephemeral); returns the
/// non-blocking listen fd or -1 with `error` set. SO_REUSEADDR is set.
int tcp_listen(const std::string& host, std::uint16_t port, int backlog,
               std::string* error);
/// The locally bound port of a socket fd (resolves ephemeral binds).
std::uint16_t tcp_local_port(int fd);

/// Seeded byte-level fault model (the PR 1 drop/corrupt/dup/delay classes
/// re-expressed at the stream layer, plus the two failure shapes unique
/// to byte streams: short reads and peer death).
struct ByteFaultConfig {
  std::uint64_t seed = 0x5eedULL;
  double drop = 0.0;       ///< P(an outgoing chunk is swallowed)
  double corrupt = 0.0;    ///< P(one byte of an outgoing chunk is flipped)
  double duplicate = 0.0;  ///< P(an outgoing chunk is sent twice)
  double delay = 0.0;      ///< P(an outgoing chunk is sent late)
  int delay_ms = 5;        ///< lateness applied when a delay fires
  double short_read = 0.0; ///< P(a read returns fewer bytes than ready)
  /// Close the underlying stream for good after this many bytes have
  /// crossed it in either direction (0 = never): simulated peer death.
  std::size_t die_after_bytes = 0;

  bool active() const {
    return drop > 0.0 || corrupt > 0.0 || duplicate > 0.0 || delay > 0.0 ||
           short_read > 0.0 || die_after_bytes > 0;
  }
};

/// Tally of injected faults (mirrors earth::FaultStats for the report
/// tables of the chaos suite).
struct ByteFaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t died = 0;
  std::uint64_t injected() const {
    return dropped + corrupted + duplicated + delayed + short_reads + died;
  }
};

class FaultyStream : public Stream {
 public:
  FaultyStream(std::unique_ptr<Stream> inner, ByteFaultConfig cfg);
  IoResult read_some(void* buf, std::size_t n, int timeout_ms) override;
  IoResult write_all(const void* buf, std::size_t n,
                     int timeout_ms) override;
  void close() override;
  const ByteFaultStats& faults() const { return stats_; }

 private:
  bool maybe_die(std::size_t about_to_transfer);

  std::unique_ptr<Stream> inner_;
  ByteFaultConfig cfg_;
  ByteFaultStats stats_;
  Xoshiro256 rng_;
  std::size_t transferred_ = 0;
  bool dead_ = false;
};

}  // namespace earthred::net
