// Thin fault-tolerant client for the networked reduction service.
//
// One Client object is one logical endpoint (host:port). Calls are
// synchronous request/response over a persistent connection that is
// re-established transparently; every call *terminates* — with a decoded
// server response or a coded E-NET-* error — inside bounded time:
//
//   * connect and per-attempt request timeouts;
//   * jittered exponential backoff retries, on retryable failures only
//     (connect/IO/timeout, protocol desync the server signalled with
//     E-NET-MAGIC / E-NET-CHECKSUM / E-NET-TRUNCATED — all transient
//     wire damage — and E-NET-BUSY / E-NET-MAXCONN overload sheds).
//     Permanent refusals (E-NET-VERSION, E-NET-OVERSIZE, E-NET-DRAINING,
//     job-level E-JOB-* codes) are returned immediately: retrying a
//     draining server or an illegal job cannot ever succeed;
//   * a per-endpoint circuit breaker: `breaker_threshold` consecutive
//     transport failures trip it Open and calls fail fast with
//     E-NET-CIRCUIT (no connection attempt at all) until `cooldown`
//     elapses, then one Half-Open probe either closes it or re-opens it.
//
// The `wrap_stream` hook lets tests interpose FaultyStream under the
// client without the client knowing — the chaos suite drives every retry
// and breaker path through real sockets with seeded byte faults.
//
// Thread safety: a Client is externally synchronized (one caller at a
// time); use one Client per thread or guard it.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "net/stream.hpp"
#include "net/wire.hpp"
#include "support/prng.hpp"

namespace earthred::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Per-attempt budget covering the request write and the response read.
  int request_timeout_ms = 10000;
  /// Total tries per call (1 = no retries).
  std::uint32_t max_attempts = 4;
  int backoff_base_ms = 25;
  int backoff_cap_ms = 1000;
  /// Seeds the backoff jitter (deterministic for tests).
  std::uint64_t jitter_seed = 0x6a11ULL;
  /// Consecutive transport failures that trip the breaker Open.
  std::uint32_t breaker_threshold = 5;
  int breaker_cooldown_ms = 500;
  std::uint32_t max_frame_bytes = kDefaultMaxPayload;
  /// Test hook: wraps each fresh connection (e.g. in a FaultyStream).
  std::function<std::unique_ptr<Stream>(std::unique_ptr<Stream>)>
      wrap_stream;
};

/// Lifetime counters of one Client. Beyond the call/attempt tallies, the
/// backoff and breaker-transition counters make the retry machinery
/// observable from the outside (bench_service --net --json and the shard
/// router's per-shard stats surface them).
struct ClientStats {
  std::uint64_t calls = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t transport_failures = 0;
  std::uint64_t breaker_fast_fails = 0;
  std::uint64_t breaker_trips = 0;        ///< Closed/HalfOpen -> Open
  std::uint64_t breaker_half_open_probes = 0;  ///< Open -> HalfOpen probe
  std::uint64_t breaker_closes = 0;       ///< HalfOpen probe -> Closed
  std::uint64_t backoff_sleeps = 0;
  std::uint64_t backoff_ms_total = 0;     ///< total time spent backing off
};

enum class BreakerState { Closed, Open, HalfOpen };
const char* to_string(BreakerState s);

class Client {
 public:
  explicit Client(ClientConfig cfg);
  ~Client();

  struct Reply {
    std::string code;    ///< empty = job reached a terminal state
    std::string detail;
    ResultBody result;   ///< valid when code is empty
    std::uint32_t attempts = 0;
    bool ok() const { return code.empty(); }
  };

  struct PingReply {
    std::string code;
    std::string detail;
    PongBody pong;
    std::uint32_t attempts = 0;
    bool ok() const { return code.empty(); }
  };

  /// Submits one job line; blocks until a terminal outcome.
  Reply submit(const std::string& job_line);
  /// Health probe.
  PingReply ping();
  /// Sends a Drain control frame (v2); the peer begins a graceful drain
  /// and acknowledges with a Pong snapshot (draining=1). Idempotent on
  /// the server side, so the usual retry machinery applies.
  PingReply drain();

  const ClientStats& stats() const { return stats_; }
  BreakerState breaker_state() const;
  /// Drops the persistent connection (next call reconnects).
  void disconnect();

 private:
  struct Attempt {
    std::string code;
    std::string detail;
    FrameRead response;
    bool retryable = false;
    bool transport_failure = false;
    bool ok() const { return code.empty(); }
  };

  Attempt attempt_call(FrameType type, std::span<const std::byte> payload,
                       std::uint64_t seq);
  /// Runs the retry/backoff/breaker state machine around attempt_call.
  Attempt call(FrameType type, std::span<const std::byte> payload,
               std::uint32_t* attempts);
  bool ensure_connected(std::string* error);
  void record_success();
  void record_failure();
  void backoff_sleep(std::uint32_t attempt);

  ClientConfig cfg_;
  ClientStats stats_;
  std::unique_ptr<Stream> stream_;
  std::uint64_t next_seq_ = 1;
  Xoshiro256 jitter_;

  // Breaker state.
  std::uint32_t consecutive_failures_ = 0;
  bool open_ = false;
  bool half_open_probe_ = false;
  std::chrono::steady_clock::time_point open_until_{};
};

}  // namespace earthred::net
