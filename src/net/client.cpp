#include "net/client.hpp"

#include <algorithm>
#include <thread>

#include "support/str.hpp"

namespace earthred::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Server-sent reject codes that indicate transient wire damage or
/// overload — a fresh attempt on a fresh connection can succeed.
bool retryable_reject(const std::string& code) {
  return code == "E-NET-BUSY" || code == "E-NET-MAXCONN" ||
         code == "E-NET-CHECKSUM" || code == "E-NET-MAGIC" ||
         code == "E-NET-TRUNCATED" || code == "E-NET-TIMEOUT" ||
         code == "E-NET-RESERVED" || code == "E-NET-TYPE";
}

}  // namespace

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

Client::Client(ClientConfig cfg)
    : cfg_(std::move(cfg)), jitter_(cfg_.jitter_seed) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (stream_) {
    stream_->close();
    stream_.reset();
  }
}

BreakerState Client::breaker_state() const {
  if (!open_) return BreakerState::Closed;
  return Clock::now() >= open_until_ ? BreakerState::HalfOpen
                                     : BreakerState::Open;
}

bool Client::ensure_connected(std::string* error) {
  if (stream_) return true;
  std::unique_ptr<Stream> s = TcpStream::connect(
      cfg_.host, cfg_.port, cfg_.connect_timeout_ms, error);
  if (!s) return false;
  if (cfg_.wrap_stream) s = cfg_.wrap_stream(std::move(s));
  stream_ = std::move(s);
  ++stats_.reconnects;
  return true;
}

void Client::record_success() {
  if (open_) ++stats_.breaker_closes;  // a Half-Open probe succeeded
  consecutive_failures_ = 0;
  open_ = false;
  half_open_probe_ = false;
}

void Client::record_failure() {
  ++stats_.transport_failures;
  ++consecutive_failures_;
  if (open_ || consecutive_failures_ >= cfg_.breaker_threshold) {
    // A Half-Open probe failing re-opens immediately; Closed trips once
    // the threshold is reached.
    if (!open_) ++stats_.breaker_trips;
    open_ = true;
    half_open_probe_ = false;
    open_until_ =
        Clock::now() + std::chrono::milliseconds(cfg_.breaker_cooldown_ms);
  }
}

void Client::backoff_sleep(std::uint32_t attempt) {
  // Full exponential with multiplicative jitter in [0.5, 1.0): spreads
  // the retry herd while keeping a deterministic schedule per seed.
  const double base = static_cast<double>(cfg_.backoff_base_ms) *
                      static_cast<double>(1u << std::min(attempt, 10u));
  const double capped =
      std::min(base, static_cast<double>(cfg_.backoff_cap_ms));
  const int ms = static_cast<int>(capped * jitter_.uniform(0.5, 1.0));
  if (ms > 0) {
    ++stats_.backoff_sleeps;
    stats_.backoff_ms_total += static_cast<std::uint64_t>(ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

Client::Attempt Client::attempt_call(FrameType type,
                                     std::span<const std::byte> payload,
                                     std::uint64_t seq) {
  Attempt a;
  std::string err;
  if (!ensure_connected(&err)) {
    a.code = "E-NET-CONN";
    a.detail = err;
    a.retryable = true;
    a.transport_failure = true;
    return a;
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(cfg_.request_timeout_ms);
  const auto ms_left = [&] {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              Clock::now())
            .count();
    return left < 1 ? 1 : static_cast<int>(left);
  };

  std::string detail;
  const std::string wcode = write_frame(*stream_, type, seq, payload,
                                        ms_left(), &detail);
  if (!wcode.empty()) {
    a.code = wcode;
    a.detail = detail;
    a.retryable = true;
    a.transport_failure = true;
    disconnect();
    return a;
  }
  FrameRead f = read_frame(*stream_, cfg_.max_frame_bytes, ms_left());
  if (!f.ok()) {
    a.code = f.code;
    a.detail = f.detail;
    a.retryable = true;
    a.transport_failure = true;
    disconnect();
    return a;
  }
  if (f.seq != seq &&
      !(f.type == FrameType::Reject && f.seq == 0)) {
    // A stale or misrouted response; the connection's framing can no
    // longer be trusted. (seq 0 on a Reject is exempt: it is the
    // server's connection-level refusal — MAXCONN at accept, a read
    // timeout, unframed garbage — which cannot echo a request seq.)
    a.code = "E-NET-PROTO";
    a.detail = strformat("response seq %llu does not match request %llu",
                         static_cast<unsigned long long>(f.seq),
                         static_cast<unsigned long long>(seq));
    a.retryable = true;
    a.transport_failure = true;
    disconnect();
    return a;
  }
  if (f.type == FrameType::Reject) {
    RejectBody rb;
    if (!decode_reject(f.payload, &rb)) {
      a.code = "E-NET-PROTO";
      a.detail = "undecodable reject payload";
      a.retryable = true;
      a.transport_failure = true;
      disconnect();
      return a;
    }
    a.code = rb.code.empty() ? "E-NET-PROTO" : rb.code;
    a.detail = rb.detail;
    a.retryable = retryable_reject(a.code);
    // The server answered coherently: the endpoint is alive, so a shed or
    // parse refusal is not breaker-relevant.
    a.transport_failure = false;
    if (a.retryable) disconnect();  // shed/desync: start clean next try
    return a;
  }
  a.response = std::move(f);
  return a;
}

Client::Attempt Client::call(FrameType type,
                             std::span<const std::byte> payload,
                             std::uint32_t* attempts) {
  ++stats_.calls;
  Attempt last;
  *attempts = 0;
  for (std::uint32_t i = 0; i < cfg_.max_attempts; ++i) {
    switch (breaker_state()) {
      case BreakerState::Open:
        ++stats_.breaker_fast_fails;
        last.code = "E-NET-CIRCUIT";
        last.detail = strformat(
            "circuit breaker open after %u consecutive failure(s)",
            consecutive_failures_);
        last.retryable = false;
        last.transport_failure = false;
        return last;
      case BreakerState::HalfOpen:
        if (half_open_probe_) {
          // Another probe is notionally in flight (same caller, nested
          // use) — treat as open.
          ++stats_.breaker_fast_fails;
          last.code = "E-NET-CIRCUIT";
          last.detail = "circuit breaker half-open, probe outstanding";
          return last;
        }
        half_open_probe_ = true;
        ++stats_.breaker_half_open_probes;
        break;
      case BreakerState::Closed:
        break;
    }
    if (i > 0) {
      ++stats_.retries;
      backoff_sleep(i - 1);
    }
    ++*attempts;
    ++stats_.attempts;
    last = attempt_call(type, payload, next_seq_++);
    if (last.ok()) {
      record_success();
      return last;
    }
    if (last.transport_failure) record_failure();
    else record_success();  // a coherent reject proves the endpoint lives
    if (!last.retryable) return last;
    if (breaker_state() == BreakerState::Open) {
      // Tripped mid-call: surface the breaker, not the raw failure, so
      // the caller knows further calls will fail fast.
      last.code = "E-NET-CIRCUIT";
      last.detail = strformat("circuit breaker tripped (last failure: %s)",
                              last.detail.c_str());
      return last;
    }
  }
  return last;
}

Client::Reply Client::submit(const std::string& job_line) {
  Reply r;
  support::ByteWriter w;
  put_string(w, job_line);
  const Attempt a = call(FrameType::Submit, w.bytes(), &r.attempts);
  if (!a.ok()) {
    r.code = a.code;
    r.detail = a.detail;
    return r;
  }
  if (a.response.type != FrameType::Result ||
      !decode_result(a.response.payload, &r.result)) {
    r.code = "E-NET-PROTO";
    r.detail = strformat("expected result frame, got %s",
                         to_string(a.response.type));
    return r;
  }
  return r;
}

Client::PingReply Client::ping() {
  PingReply r;
  const Attempt a = call(FrameType::Ping, {}, &r.attempts);
  if (!a.ok()) {
    r.code = a.code;
    r.detail = a.detail;
    return r;
  }
  if (a.response.type != FrameType::Pong ||
      !decode_pong(a.response.payload, &r.pong)) {
    r.code = "E-NET-PROTO";
    r.detail = strformat("expected pong frame, got %s",
                         to_string(a.response.type));
    return r;
  }
  return r;
}

Client::PingReply Client::drain() {
  PingReply r;
  const Attempt a = call(FrameType::Drain, {}, &r.attempts);
  if (!a.ok()) {
    r.code = a.code;
    r.detail = a.detail;
    return r;
  }
  if (a.response.type != FrameType::Pong ||
      !decode_pong(a.response.payload, &r.pong)) {
    r.code = "E-NET-PROTO";
    r.detail = strformat("expected pong frame, got %s",
                         to_string(a.response.type));
    return r;
  }
  return r;
}

}  // namespace earthred::net
