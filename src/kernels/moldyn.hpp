// moldyn: non-bonded molecular dynamics force kernel (the moldyn benchmark
// of [14] the paper evaluates).
//
// Each time step sweeps the pair-interaction list: a pair computes a
// softened Lennard-Jones-style central force from the two molecules'
// positions and accumulates equal-and-opposite force contributions; the
// sweep-final update integrates positions from the completed forces.
//
//   reduction arrays : fx, fy, fz  (forces; LHS-indirect)
//   node read arrays : px, py, pz  (positions; replicated per sweep)
#pragma once

#include <cstdint>
#include <vector>

#include "core/kernel.hpp"
#include "mesh/mesh.hpp"

namespace earthred::kernels {

class MoldynKernel final : public core::PhasedKernel {
 public:
  /// `dt` scales the position update; forces are softened/clamped so the
  /// integration stays bounded over the paper's 100 time steps.
  explicit MoldynKernel(mesh::Mesh interactions, double dt = 1e-4);

  core::KernelShape shape() const override;
  std::uint32_t ref(std::uint32_t r, std::uint64_t edge) const override;
  void init_node_arrays(
      std::vector<std::vector<double>>& arrays) const override;
  void compute_edge(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint64_t edge_global, std::uint64_t edge_slot,
                    std::span<const std::uint32_t> redirected,
                    core::ProcArrays& arrays) const override;
  void compute_phase(earth::FiberContext& ctx, const core::CostTags& tags,
                     const core::PhaseView& phase,
                     core::ProcArrays& arrays) const override;
  void update_nodes(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint32_t begin, std::uint32_t end,
                    std::uint32_t base,
                    core::ProcArrays& arrays) const override;

  std::unique_ptr<core::PhasedKernel> clone_renumbered(
      std::span<const std::uint32_t> perm) const override;

  const mesh::Mesh& mesh() const noexcept { return mesh_; }

 private:
  mesh::Mesh mesh_;
  double dt_;
};

}  // namespace earthred::kernels
