#pragma once

// Per-kernel backend ops for the batched phase hot path.
//
// Each kernel's `compute_phase` batch loop lives here as a family of
// implementations — scalar, AVX2, AVX-512 — behind one dispatch function
// taking a resolved `core::BackendKind`. All tiers are bit-identical to
// the per-edge reference path (test_batch_equivalence is the acceptance
// bar). The SIMD tiers get that by construction: gathers and the flux
// arithmetic run in vector lanes (IEEE-exact per lane, no FMA contraction
// — this file is built with -ffp-contract=off on x86), while the scatter
// accumulation into reduction arrays is always scalar and j-ascending,
// because accumulation *order* is the contract.
//
// Cache-blocked tiling: when an Args struct carries a non-zero `tile`
// (from the plan's layout pass, core/layout.hpp), the dispatch functions
// cut the phase into tiles of that many iterations and software-prefetch
// the next tile's gather lines before running the current one. Tiling
// never changes evaluation order — each tile runs the same j-ascending
// loop — so it is bit-safe under every backend tier.

#include <cstddef>
#include <cstdint>

#include "core/backend.hpp"
#include "mesh/mesh.hpp"

namespace earthred::kernels::ops {

/// fig1: x[ia1[j]] += y[eg[j]]*c; x[ia2[j]] += y[eg[j]]*c.
struct Fig1Args {
  const std::uint32_t* ia1 = nullptr;
  const std::uint32_t* ia2 = nullptr;
  const std::uint32_t* eg = nullptr;
  const double* y = nullptr;
  double c = 0.0;
  double* x = nullptr;
  std::size_t n = 0;
  std::uint32_t tile = 0;  ///< iterations per cache tile; 0 = untiled
};

/// euler: edge flux from gathered vel/pre, equal-and-opposite scatter.
struct EulerArgs {
  const std::uint32_t* ia1 = nullptr;
  const std::uint32_t* ia2 = nullptr;
  const std::uint32_t* eg = nullptr;
  const mesh::Edge* edges = nullptr;
  const double* coef = nullptr;
  const double* vel = nullptr;
  const double* pre = nullptr;
  double* dvel = nullptr;
  double* dpre = nullptr;
  std::size_t n = 0;
  std::uint32_t tile = 0;  ///< iterations per cache tile; 0 = untiled
};

/// moldyn: clamped Lennard-Jones force from gathered positions.
struct MoldynArgs {
  const std::uint32_t* ia1 = nullptr;
  const std::uint32_t* ia2 = nullptr;
  const std::uint32_t* eg = nullptr;
  const mesh::Edge* edges = nullptr;
  const double* px = nullptr;
  const double* py = nullptr;
  const double* pz = nullptr;
  double* fx = nullptr;
  double* fy = nullptr;
  double* fz = nullptr;
  std::size_t n = 0;
  std::uint32_t tile = 0;  ///< iterations per cache tile; 0 = untiled
};

/// spmv_t: y[ia[j]] += val[eg[j]] * x[row[eg[j]]].
struct SpmvTArgs {
  const std::uint32_t* ia = nullptr;
  const std::uint32_t* eg = nullptr;
  const std::uint32_t* row = nullptr;
  const double* val = nullptr;
  const double* x = nullptr;
  double* y = nullptr;
  std::size_t n = 0;
  std::uint32_t tile = 0;  ///< iterations per cache tile; 0 = untiled
};

// Dispatch on a *resolved* backend (never Auto; resolve with
// core::resolve_backend first). An unsupported/uncompiled SIMD kind falls
// back to scalar rather than faulting, so a stale PhaseView default is
// always safe to execute.
void fig1_phase(core::BackendKind backend, const Fig1Args& a);
void euler_phase(core::BackendKind backend, const EulerArgs& a);
void moldyn_phase(core::BackendKind backend, const MoldynArgs& a);
void spmv_t_phase(core::BackendKind backend, const SpmvTArgs& a);

}  // namespace earthred::kernels::ops
