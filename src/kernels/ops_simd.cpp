#include "kernels/ops_simd.hpp"

#include <algorithm>

#if EARTHRED_HAS_X86_BACKENDS
#include <immintrin.h>
#define ER_TGT_AVX2 __attribute__((target("avx2")))
#define ER_TGT_AVX512 __attribute__((target("avx2,avx512f")))
#endif

// NOTE: this translation unit is compiled with -ffp-contract=off (see
// src/kernels/CMakeLists.txt). The AVX-512 target enables scalar FMA
// forms, and a contracted mul+add would round once instead of twice —
// silently breaking the bit-identity contract in the scalar remainder
// loops below. With contraction off, every tier performs exactly the
// written operations.

namespace earthred::kernels::ops {

namespace {

// Block size for the SIMD tiers: contributions are staged per block in
// stack buffers, then scattered in order. Small enough to stay hot in L1
// (moldyn's three lanes: 6 KiB), large enough to amortize loop overhead.
constexpr std::size_t kBlock = 256;

// ---------------------------------------------------------------------
// Shared scatter-accumulation helpers. Accumulation order is the
// bit-identity contract, so these are scalar and j-ascending in every
// tier; the SIMD tiers vectorize only the gather + arithmetic above them.
// ---------------------------------------------------------------------

inline void scatter_add(double* x, const std::uint32_t* ia,
                        const double* c, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) x[ia[j]] += c[j];
}

inline void scatter_add_both(double* x, const std::uint32_t* ia1,
                             const std::uint32_t* ia2, const double* c,
                             std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    x[ia1[j]] += c[j];
    x[ia2[j]] += c[j];
  }
}

inline void scatter_add_sub(double* x, const std::uint32_t* ia1,
                            const std::uint32_t* ia2, const double* c,
                            std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    x[ia1[j]] += c[j];
    x[ia2[j]] -= c[j];
  }
}

// ---------------------------------------------------------------------
// Scalar tier: the original fused compute_phase loops, verbatim.
// ---------------------------------------------------------------------

void fig1_scalar(const Fig1Args& a) {
  for (std::size_t j = 0; j < a.n; ++j) {
    const double contribution = a.y[a.eg[j]] * a.c;
    a.x[a.ia1[j]] += contribution;
    a.x[a.ia2[j]] += contribution;
  }
}

void euler_scalar(const EulerArgs& a) {
  for (std::size_t j = 0; j < a.n; ++j) {
    const std::uint32_t e = a.eg[j];
    const std::uint32_t n1 = a.edges[e].a;
    const std::uint32_t n2 = a.edges[e].b;
    const double c = a.coef[e];
    const double v1 = a.vel[n1];
    const double v2 = a.vel[n2];
    const double p1 = a.pre[n1];
    const double p2 = a.pre[n2];
    const double vflux = c * (p1 - p2);
    const double pflux = c * 0.5 * (v1 + v2) + 0.25 * c * (p1 - p2);
    a.dvel[a.ia1[j]] += vflux;
    a.dvel[a.ia2[j]] -= vflux;
    a.dpre[a.ia1[j]] += pflux;
    a.dpre[a.ia2[j]] -= pflux;
  }
}

void moldyn_scalar(const MoldynArgs& a) {
  for (std::size_t j = 0; j < a.n; ++j) {
    const std::uint32_t e = a.eg[j];
    const std::uint32_t m1 = a.edges[e].a;
    const std::uint32_t m2 = a.edges[e].b;
    const double d0 = a.px[m1] - a.px[m2];
    const double d1 = a.py[m1] - a.py[m2];
    const double d2 = a.pz[m1] - a.pz[m2];
    const double r2 = d0 * d0 + d1 * d1 + d2 * d2 + 0.25;
    const double inv2 = 1.0 / r2;
    const double inv6 = inv2 * inv2 * inv2;
    const double mag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
    const double clamped = std::clamp(mag, -32.0, 32.0);
    const double f0 = clamped * d0;
    const double f1 = clamped * d1;
    const double f2 = clamped * d2;
    a.fx[a.ia1[j]] += f0;
    a.fx[a.ia2[j]] -= f0;
    a.fy[a.ia1[j]] += f1;
    a.fy[a.ia2[j]] -= f1;
    a.fz[a.ia1[j]] += f2;
    a.fz[a.ia2[j]] -= f2;
  }
}

void spmv_t_scalar(const SpmvTArgs& a) {
  for (std::size_t j = 0; j < a.n; ++j) {
    const std::uint32_t e = a.eg[j];
    a.y[a.ia[j]] += a.val[e] * a.x[a.row[e]];
  }
}

#if EARTHRED_HAS_X86_BACKENDS

// ---------------------------------------------------------------------
// AVX2 tier: 4 double lanes, VEX gathers. Node/edge ids are uint32 and
// the repo-wide limits (max 20M nodes / 200M edges) keep them below
// 2^31, so signed i32 gather indices are safe.
// ---------------------------------------------------------------------

ER_TGT_AVX2 inline __m128i load_idx4(const std::uint32_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

// Gathers edges[e].a / edges[e].b for 4 edges: the Edge struct is two
// packed uint32s, so each endpoint is a 32-bit gather with byte stride 8.
ER_TGT_AVX2 inline __m128i gather_edge_a4(const mesh::Edge* edges,
                                          __m128i e) {
  return _mm_i32gather_epi32(
      reinterpret_cast<const int*>(&edges[0].a), e, 8);
}

ER_TGT_AVX2 inline __m128i gather_edge_b4(const mesh::Edge* edges,
                                          __m128i e) {
  return _mm_i32gather_epi32(
      reinterpret_cast<const int*>(&edges[0].b), e, 8);
}

ER_TGT_AVX2 void fig1_avx2(const Fig1Args& a) {
  double contrib[kBlock];
  const __m256d vc = _mm256_set1_pd(a.c);
  for (std::size_t base = 0; base < a.n; base += kBlock) {
    const std::size_t n = std::min(kBlock, a.n - base);
    const std::uint32_t* eg = a.eg + base;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m128i e = load_idx4(eg + j);
      const __m256d y = _mm256_i32gather_pd(a.y, e, 8);
      _mm256_storeu_pd(contrib + j, _mm256_mul_pd(y, vc));
    }
    for (; j < n; ++j) contrib[j] = a.y[eg[j]] * a.c;
    scatter_add_both(a.x, a.ia1 + base, a.ia2 + base, contrib, n);
  }
}

ER_TGT_AVX2 void euler_avx2(const EulerArgs& a) {
  double vbuf[kBlock];
  double pbuf[kBlock];
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d quarter = _mm256_set1_pd(0.25);
  for (std::size_t base = 0; base < a.n; base += kBlock) {
    const std::size_t n = std::min(kBlock, a.n - base);
    const std::uint32_t* eg = a.eg + base;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m128i e = load_idx4(eg + j);
      const __m128i n1 = gather_edge_a4(a.edges, e);
      const __m128i n2 = gather_edge_b4(a.edges, e);
      const __m256d c = _mm256_i32gather_pd(a.coef, e, 8);
      const __m256d v1 = _mm256_i32gather_pd(a.vel, n1, 8);
      const __m256d v2 = _mm256_i32gather_pd(a.vel, n2, 8);
      const __m256d p1 = _mm256_i32gather_pd(a.pre, n1, 8);
      const __m256d p2 = _mm256_i32gather_pd(a.pre, n2, 8);
      const __m256d pdiff = _mm256_sub_pd(p1, p2);
      const __m256d vflux = _mm256_mul_pd(c, pdiff);
      // pflux = ((c*0.5)*(v1+v2)) + ((0.25*c)*(p1-p2)), matching the
      // scalar expression's association exactly.
      const __m256d pflux = _mm256_add_pd(
          _mm256_mul_pd(_mm256_mul_pd(c, half), _mm256_add_pd(v1, v2)),
          _mm256_mul_pd(_mm256_mul_pd(quarter, c), pdiff));
      _mm256_storeu_pd(vbuf + j, vflux);
      _mm256_storeu_pd(pbuf + j, pflux);
    }
    for (; j < n; ++j) {
      const std::uint32_t e = eg[j];
      const std::uint32_t n1 = a.edges[e].a;
      const std::uint32_t n2 = a.edges[e].b;
      const double c = a.coef[e];
      const double v1 = a.vel[n1];
      const double v2 = a.vel[n2];
      const double p1 = a.pre[n1];
      const double p2 = a.pre[n2];
      vbuf[j] = c * (p1 - p2);
      pbuf[j] = c * 0.5 * (v1 + v2) + 0.25 * c * (p1 - p2);
    }
    scatter_add_sub(a.dvel, a.ia1 + base, a.ia2 + base, vbuf, n);
    scatter_add_sub(a.dpre, a.ia1 + base, a.ia2 + base, pbuf, n);
  }
}

ER_TGT_AVX2 void moldyn_avx2(const MoldynArgs& a) {
  double f0buf[kBlock];
  double f1buf[kBlock];
  double f2buf[kBlock];
  const __m256d vq = _mm256_set1_pd(0.25);
  const __m256d v1 = _mm256_set1_pd(1.0);
  const __m256d v2 = _mm256_set1_pd(2.0);
  const __m256d v24 = _mm256_set1_pd(24.0);
  const __m256d lo = _mm256_set1_pd(-32.0);
  const __m256d hi = _mm256_set1_pd(32.0);
  for (std::size_t base = 0; base < a.n; base += kBlock) {
    const std::size_t n = std::min(kBlock, a.n - base);
    const std::uint32_t* eg = a.eg + base;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m128i e = load_idx4(eg + j);
      const __m128i m1 = gather_edge_a4(a.edges, e);
      const __m128i m2 = gather_edge_b4(a.edges, e);
      const __m256d d0 = _mm256_sub_pd(_mm256_i32gather_pd(a.px, m1, 8),
                                       _mm256_i32gather_pd(a.px, m2, 8));
      const __m256d d1 = _mm256_sub_pd(_mm256_i32gather_pd(a.py, m1, 8),
                                       _mm256_i32gather_pd(a.py, m2, 8));
      const __m256d d2 = _mm256_sub_pd(_mm256_i32gather_pd(a.pz, m1, 8),
                                       _mm256_i32gather_pd(a.pz, m2, 8));
      // r2 = ((d0*d0 + d1*d1) + d2*d2) + 0.25, left-associated like the
      // scalar source.
      const __m256d r2 = _mm256_add_pd(
          _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(d0, d0),
                                      _mm256_mul_pd(d1, d1)),
                        _mm256_mul_pd(d2, d2)),
          vq);
      const __m256d inv2 = _mm256_div_pd(v1, r2);
      const __m256d inv6 =
          _mm256_mul_pd(_mm256_mul_pd(inv2, inv2), inv2);
      const __m256d mag = _mm256_mul_pd(
          _mm256_mul_pd(_mm256_mul_pd(v24, inv2), inv6),
          _mm256_sub_pd(_mm256_mul_pd(v2, inv6), v1));
      // mag is never NaN (r2 >= 0.25), so min/max match std::clamp.
      const __m256d clamped =
          _mm256_min_pd(_mm256_max_pd(mag, lo), hi);
      _mm256_storeu_pd(f0buf + j, _mm256_mul_pd(clamped, d0));
      _mm256_storeu_pd(f1buf + j, _mm256_mul_pd(clamped, d1));
      _mm256_storeu_pd(f2buf + j, _mm256_mul_pd(clamped, d2));
    }
    for (; j < n; ++j) {
      const std::uint32_t e = eg[j];
      const std::uint32_t m1 = a.edges[e].a;
      const std::uint32_t m2 = a.edges[e].b;
      const double d0 = a.px[m1] - a.px[m2];
      const double d1 = a.py[m1] - a.py[m2];
      const double d2 = a.pz[m1] - a.pz[m2];
      const double r2 = d0 * d0 + d1 * d1 + d2 * d2 + 0.25;
      const double inv2 = 1.0 / r2;
      const double inv6 = inv2 * inv2 * inv2;
      const double mag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
      const double clamped = std::clamp(mag, -32.0, 32.0);
      f0buf[j] = clamped * d0;
      f1buf[j] = clamped * d1;
      f2buf[j] = clamped * d2;
    }
    scatter_add_sub(a.fx, a.ia1 + base, a.ia2 + base, f0buf, n);
    scatter_add_sub(a.fy, a.ia1 + base, a.ia2 + base, f1buf, n);
    scatter_add_sub(a.fz, a.ia1 + base, a.ia2 + base, f2buf, n);
  }
}

ER_TGT_AVX2 void spmv_t_avx2(const SpmvTArgs& a) {
  double prod[kBlock];
  for (std::size_t base = 0; base < a.n; base += kBlock) {
    const std::size_t n = std::min(kBlock, a.n - base);
    const std::uint32_t* eg = a.eg + base;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m128i e = load_idx4(eg + j);
      const __m128i r = _mm_i32gather_epi32(
          reinterpret_cast<const int*>(a.row), e, 4);
      const __m256d v = _mm256_i32gather_pd(a.val, e, 8);
      const __m256d x = _mm256_i32gather_pd(a.x, r, 8);
      _mm256_storeu_pd(prod + j, _mm256_mul_pd(v, x));
    }
    for (; j < n; ++j) {
      const std::uint32_t e = eg[j];
      prod[j] = a.val[e] * a.x[a.row[e]];
    }
    scatter_add(a.y, a.ia + base, prod, n);
  }
}

// ---------------------------------------------------------------------
// AVX-512 tier: 8 double lanes. Same structure as AVX2; note the
// flipped (vindex, base) argument order of the 512-bit gathers.
// ---------------------------------------------------------------------

ER_TGT_AVX512 inline __m256i load_idx8(const std::uint32_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

ER_TGT_AVX512 inline __m256i gather_edge_a8(const mesh::Edge* edges,
                                            __m256i e) {
  return _mm256_i32gather_epi32(
      reinterpret_cast<const int*>(&edges[0].a), e, 8);
}

ER_TGT_AVX512 inline __m256i gather_edge_b8(const mesh::Edge* edges,
                                            __m256i e) {
  return _mm256_i32gather_epi32(
      reinterpret_cast<const int*>(&edges[0].b), e, 8);
}

ER_TGT_AVX512 void fig1_avx512(const Fig1Args& a) {
  double contrib[kBlock];
  const __m512d vc = _mm512_set1_pd(a.c);
  for (std::size_t base = 0; base < a.n; base += kBlock) {
    const std::size_t n = std::min(kBlock, a.n - base);
    const std::uint32_t* eg = a.eg + base;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256i e = load_idx8(eg + j);
      const __m512d y = _mm512_i32gather_pd(e, a.y, 8);
      _mm512_storeu_pd(contrib + j, _mm512_mul_pd(y, vc));
    }
    for (; j < n; ++j) contrib[j] = a.y[eg[j]] * a.c;
    scatter_add_both(a.x, a.ia1 + base, a.ia2 + base, contrib, n);
  }
}

ER_TGT_AVX512 void euler_avx512(const EulerArgs& a) {
  double vbuf[kBlock];
  double pbuf[kBlock];
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d quarter = _mm512_set1_pd(0.25);
  for (std::size_t base = 0; base < a.n; base += kBlock) {
    const std::size_t n = std::min(kBlock, a.n - base);
    const std::uint32_t* eg = a.eg + base;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256i e = load_idx8(eg + j);
      const __m256i n1 = gather_edge_a8(a.edges, e);
      const __m256i n2 = gather_edge_b8(a.edges, e);
      const __m512d c = _mm512_i32gather_pd(e, a.coef, 8);
      const __m512d v1 = _mm512_i32gather_pd(n1, a.vel, 8);
      const __m512d v2 = _mm512_i32gather_pd(n2, a.vel, 8);
      const __m512d p1 = _mm512_i32gather_pd(n1, a.pre, 8);
      const __m512d p2 = _mm512_i32gather_pd(n2, a.pre, 8);
      const __m512d pdiff = _mm512_sub_pd(p1, p2);
      const __m512d vflux = _mm512_mul_pd(c, pdiff);
      const __m512d pflux = _mm512_add_pd(
          _mm512_mul_pd(_mm512_mul_pd(c, half), _mm512_add_pd(v1, v2)),
          _mm512_mul_pd(_mm512_mul_pd(quarter, c), pdiff));
      _mm512_storeu_pd(vbuf + j, vflux);
      _mm512_storeu_pd(pbuf + j, pflux);
    }
    for (; j < n; ++j) {
      const std::uint32_t e = eg[j];
      const std::uint32_t n1 = a.edges[e].a;
      const std::uint32_t n2 = a.edges[e].b;
      const double c = a.coef[e];
      const double v1 = a.vel[n1];
      const double v2 = a.vel[n2];
      const double p1 = a.pre[n1];
      const double p2 = a.pre[n2];
      vbuf[j] = c * (p1 - p2);
      pbuf[j] = c * 0.5 * (v1 + v2) + 0.25 * c * (p1 - p2);
    }
    scatter_add_sub(a.dvel, a.ia1 + base, a.ia2 + base, vbuf, n);
    scatter_add_sub(a.dpre, a.ia1 + base, a.ia2 + base, pbuf, n);
  }
}

ER_TGT_AVX512 void moldyn_avx512(const MoldynArgs& a) {
  double f0buf[kBlock];
  double f1buf[kBlock];
  double f2buf[kBlock];
  const __m512d vq = _mm512_set1_pd(0.25);
  const __m512d v1 = _mm512_set1_pd(1.0);
  const __m512d v2 = _mm512_set1_pd(2.0);
  const __m512d v24 = _mm512_set1_pd(24.0);
  const __m512d lo = _mm512_set1_pd(-32.0);
  const __m512d hi = _mm512_set1_pd(32.0);
  for (std::size_t base = 0; base < a.n; base += kBlock) {
    const std::size_t n = std::min(kBlock, a.n - base);
    const std::uint32_t* eg = a.eg + base;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256i e = load_idx8(eg + j);
      const __m256i m1 = gather_edge_a8(a.edges, e);
      const __m256i m2 = gather_edge_b8(a.edges, e);
      const __m512d d0 = _mm512_sub_pd(_mm512_i32gather_pd(m1, a.px, 8),
                                       _mm512_i32gather_pd(m2, a.px, 8));
      const __m512d d1 = _mm512_sub_pd(_mm512_i32gather_pd(m1, a.py, 8),
                                       _mm512_i32gather_pd(m2, a.py, 8));
      const __m512d d2 = _mm512_sub_pd(_mm512_i32gather_pd(m1, a.pz, 8),
                                       _mm512_i32gather_pd(m2, a.pz, 8));
      const __m512d r2 = _mm512_add_pd(
          _mm512_add_pd(_mm512_add_pd(_mm512_mul_pd(d0, d0),
                                      _mm512_mul_pd(d1, d1)),
                        _mm512_mul_pd(d2, d2)),
          vq);
      const __m512d inv2 = _mm512_div_pd(v1, r2);
      const __m512d inv6 =
          _mm512_mul_pd(_mm512_mul_pd(inv2, inv2), inv2);
      const __m512d mag = _mm512_mul_pd(
          _mm512_mul_pd(_mm512_mul_pd(v24, inv2), inv6),
          _mm512_sub_pd(_mm512_mul_pd(v2, inv6), v1));
      const __m512d clamped =
          _mm512_min_pd(_mm512_max_pd(mag, lo), hi);
      _mm512_storeu_pd(f0buf + j, _mm512_mul_pd(clamped, d0));
      _mm512_storeu_pd(f1buf + j, _mm512_mul_pd(clamped, d1));
      _mm512_storeu_pd(f2buf + j, _mm512_mul_pd(clamped, d2));
    }
    for (; j < n; ++j) {
      const std::uint32_t e = eg[j];
      const std::uint32_t m1 = a.edges[e].a;
      const std::uint32_t m2 = a.edges[e].b;
      const double d0 = a.px[m1] - a.px[m2];
      const double d1 = a.py[m1] - a.py[m2];
      const double d2 = a.pz[m1] - a.pz[m2];
      const double r2 = d0 * d0 + d1 * d1 + d2 * d2 + 0.25;
      const double inv2 = 1.0 / r2;
      const double inv6 = inv2 * inv2 * inv2;
      const double mag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
      const double clamped = std::clamp(mag, -32.0, 32.0);
      f0buf[j] = clamped * d0;
      f1buf[j] = clamped * d1;
      f2buf[j] = clamped * d2;
    }
    scatter_add_sub(a.fx, a.ia1 + base, a.ia2 + base, f0buf, n);
    scatter_add_sub(a.fy, a.ia1 + base, a.ia2 + base, f1buf, n);
    scatter_add_sub(a.fz, a.ia1 + base, a.ia2 + base, f2buf, n);
  }
}

ER_TGT_AVX512 void spmv_t_avx512(const SpmvTArgs& a) {
  double prod[kBlock];
  for (std::size_t base = 0; base < a.n; base += kBlock) {
    const std::size_t n = std::min(kBlock, a.n - base);
    const std::uint32_t* eg = a.eg + base;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256i e = load_idx8(eg + j);
      const __m256i r = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(a.row), e, 4);
      const __m512d v = _mm512_i32gather_pd(e, a.val, 8);
      const __m512d x = _mm512_i32gather_pd(r, a.x, 8);
      _mm512_storeu_pd(prod + j, _mm512_mul_pd(v, x));
    }
    for (; j < n; ++j) {
      const std::uint32_t e = eg[j];
      prod[j] = a.val[e] * a.x[a.row[e]];
    }
    scatter_add(a.y, a.ia + base, prod, n);
  }
}

#endif  // EARTHRED_HAS_X86_BACKENDS

// Software prefetch into a low cache level, read-only. A no-op on
// compilers without the builtin — tiling still works, just without the
// early line fetch.
#if defined(__GNUC__) || defined(__clang__)
#define ER_PREFETCH(p) __builtin_prefetch((p), 0, 1)
#else
#define ER_PREFETCH(p) ((void)(p))
#endif

// Cache-tile drivers: run the phase one tile at a time, prefetching the
// *next* tile's gather lines before computing the current one. The
// gather targets (y[eg[j]], edges[eg[j]], ...) are the only
// data-dependent loads whose addresses are known ahead of the compute
// loop, so they are what the layout pass's tiling buys back after the
// target-stable edge sort randomizes edge-data order. Each tile runs the
// same j-ascending loop as the untiled path, so evaluation order — and
// therefore every result bit — is unchanged; only memory-issue distance
// moves.

void fig1_tiled(core::BackendKind backend, const Fig1Args& a) {
  const std::size_t tile = a.tile;
  for (std::size_t base = 0; base < a.n; base += tile) {
    const std::size_t len = std::min(tile, a.n - base);
    const std::size_t next_end = std::min(a.n, base + len + tile);
    for (std::size_t j = base + len; j < next_end; ++j)
      ER_PREFETCH(&a.y[a.eg[j]]);
    Fig1Args sub = a;
    sub.ia1 += base;
    sub.ia2 += base;
    sub.eg += base;
    sub.n = len;
    sub.tile = 0;
    fig1_phase(backend, sub);
  }
}

void euler_tiled(core::BackendKind backend, const EulerArgs& a) {
  const std::size_t tile = a.tile;
  for (std::size_t base = 0; base < a.n; base += tile) {
    const std::size_t len = std::min(tile, a.n - base);
    const std::size_t next_end = std::min(a.n, base + len + tile);
    for (std::size_t j = base + len; j < next_end; ++j) {
      const std::uint32_t e = a.eg[j];
      ER_PREFETCH(&a.edges[e]);
      ER_PREFETCH(&a.coef[e]);
    }
    EulerArgs sub = a;
    sub.ia1 += base;
    sub.ia2 += base;
    sub.eg += base;
    sub.n = len;
    sub.tile = 0;
    euler_phase(backend, sub);
  }
}

void moldyn_tiled(core::BackendKind backend, const MoldynArgs& a) {
  const std::size_t tile = a.tile;
  for (std::size_t base = 0; base < a.n; base += tile) {
    const std::size_t len = std::min(tile, a.n - base);
    const std::size_t next_end = std::min(a.n, base + len + tile);
    for (std::size_t j = base + len; j < next_end; ++j)
      ER_PREFETCH(&a.edges[a.eg[j]]);
    MoldynArgs sub = a;
    sub.ia1 += base;
    sub.ia2 += base;
    sub.eg += base;
    sub.n = len;
    sub.tile = 0;
    moldyn_phase(backend, sub);
  }
}

void spmv_t_tiled(core::BackendKind backend, const SpmvTArgs& a) {
  const std::size_t tile = a.tile;
  for (std::size_t base = 0; base < a.n; base += tile) {
    const std::size_t len = std::min(tile, a.n - base);
    const std::size_t next_end = std::min(a.n, base + len + tile);
    for (std::size_t j = base + len; j < next_end; ++j) {
      const std::uint32_t e = a.eg[j];
      ER_PREFETCH(&a.val[e]);
      ER_PREFETCH(&a.row[e]);
    }
    SpmvTArgs sub = a;
    sub.ia += base;
    sub.eg += base;
    sub.n = len;
    sub.tile = 0;
    spmv_t_phase(backend, sub);
  }
}

#undef ER_PREFETCH

}  // namespace

void fig1_phase(core::BackendKind backend, const Fig1Args& a) {
  if (a.tile != 0 && a.n > a.tile) return fig1_tiled(backend, a);
#if EARTHRED_HAS_X86_BACKENDS
  if (backend == core::BackendKind::Avx512) return fig1_avx512(a);
  if (backend == core::BackendKind::Avx2) return fig1_avx2(a);
#endif
  (void)backend;
  fig1_scalar(a);
}

void euler_phase(core::BackendKind backend, const EulerArgs& a) {
  if (a.tile != 0 && a.n > a.tile) return euler_tiled(backend, a);
#if EARTHRED_HAS_X86_BACKENDS
  if (backend == core::BackendKind::Avx512) return euler_avx512(a);
  if (backend == core::BackendKind::Avx2) return euler_avx2(a);
#endif
  (void)backend;
  euler_scalar(a);
}

void moldyn_phase(core::BackendKind backend, const MoldynArgs& a) {
  if (a.tile != 0 && a.n > a.tile) return moldyn_tiled(backend, a);
#if EARTHRED_HAS_X86_BACKENDS
  if (backend == core::BackendKind::Avx512) return moldyn_avx512(a);
  if (backend == core::BackendKind::Avx2) return moldyn_avx2(a);
#endif
  (void)backend;
  moldyn_scalar(a);
}

void spmv_t_phase(core::BackendKind backend, const SpmvTArgs& a) {
  if (a.tile != 0 && a.n > a.tile) return spmv_t_tiled(backend, a);
#if EARTHRED_HAS_X86_BACKENDS
  if (backend == core::BackendKind::Avx512) return spmv_t_avx512(a);
  if (backend == core::BackendKind::Avx2) return spmv_t_avx2(a);
#endif
  (void)backend;
  spmv_t_scalar(a);
}

}  // namespace earthred::kernels::ops
