// The paper's Figure 1 loop as a kernel: the minimal irregular reduction.
//
//   for i = 1 .. num_edges
//     X(IA(i,1)) += Y(i) * C
//     X(IA(i,2)) += Y(i) * C
//
// One reduction array, two indirection references, no node-read arrays and
// no per-sweep node update. With integer-valued Y the reduction is exact
// in floating point regardless of summation order, which lets tests demand
// bitwise equality between the parallel engines and the sequential
// reference.
#pragma once

#include <cstdint>
#include <vector>

#include "core/kernel.hpp"
#include "mesh/mesh.hpp"

namespace earthred::kernels {

class Fig1Kernel final : public core::PhasedKernel {
 public:
  /// `y` holds one value per edge; `c` is the loop constant.
  Fig1Kernel(mesh::Mesh mesh, std::vector<double> y, double c = 2.0);

  /// Convenience: integer-valued Y derived deterministically from the
  /// edge id (exact summation for bitwise validation).
  static Fig1Kernel with_integer_values(mesh::Mesh mesh);

  core::KernelShape shape() const override;
  std::uint32_t ref(std::uint32_t r, std::uint64_t edge) const override;
  void init_node_arrays(
      std::vector<std::vector<double>>& arrays) const override;
  void compute_edge(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint64_t edge_global, std::uint64_t edge_slot,
                    std::span<const std::uint32_t> redirected,
                    core::ProcArrays& arrays) const override;
  void compute_phase(earth::FiberContext& ctx, const core::CostTags& tags,
                     const core::PhaseView& phase,
                     core::ProcArrays& arrays) const override;
  void update_nodes(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint32_t begin, std::uint32_t end,
                    std::uint32_t base,
                    core::ProcArrays& arrays) const override;

  std::unique_ptr<core::PhasedKernel> clone_renumbered(
      std::span<const std::uint32_t> perm) const override;

  const mesh::Mesh& mesh() const noexcept { return mesh_; }

 private:
  mesh::Mesh mesh_;
  std::vector<double> y_;
  double c_;
};

}  // namespace earthred::kernels
