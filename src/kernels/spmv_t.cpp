#include "kernels/spmv_t.hpp"

#include "kernels/ops_simd.hpp"
#include "support/check.hpp"

namespace earthred::kernels {

SpmvTKernel::SpmvTKernel(const sparse::CsrMatrix& A, std::vector<double> x)
    : ncols_(A.ncols()), x_(std::move(x)) {
  ER_EXPECTS(x_.size() == A.nrows());
  row_.reserve(A.nnz());
  col_.reserve(A.nnz());
  val_.reserve(A.nnz());
  const auto row_ptr = A.row_ptr();
  const auto col_idx = A.col_idx();
  const auto values = A.values();
  for (std::uint32_t r = 0; r < A.nrows(); ++r) {
    for (std::uint64_t j = row_ptr[r]; j < row_ptr[r + 1]; ++j) {
      row_.push_back(r);
      col_.push_back(col_idx[j]);
      val_.push_back(values[j]);
    }
  }
}

core::KernelShape SpmvTKernel::shape() const {
  return core::KernelShape{
      .num_nodes = ncols_,
      .num_edges = val_.size(),
      .num_refs = 1,
      .num_reduction_arrays = 1,
      .num_node_read_arrays = 0,
  };
}

std::uint32_t SpmvTKernel::ref(std::uint32_t r, std::uint64_t edge) const {
  ER_EXPECTS(r == 0 && edge < col_.size());
  return col_[edge];
}

void SpmvTKernel::init_node_arrays(
    std::vector<std::vector<double>>&) const {}

void SpmvTKernel::compute_edge(earth::FiberContext& ctx,
                               const core::CostTags& tags,
                               std::uint64_t edge_global,
                               std::uint64_t edge_slot,
                               std::span<const std::uint32_t> redirected,
                               core::ProcArrays& arrays) const {
  // Value and row index stream with the iteration; x is gathered by row
  // (rows repeat consecutively in CSR order, so this is near-streaming
  // too — we address it through the edge tag at the row index).
  ctx.load(tags.edge_data, edge_slot * 2, 8);      // val
  ctx.load(tags.edge_data, edge_slot * 2 + 1, 4);  // row
  ctx.load(tags.indir, row_[edge_global], 8);      // x[row]
  ctx.charge_flops(2);
  ctx.load(tags.reduction[0], redirected[0]);
  ctx.store(tags.reduction[0], redirected[0]);
  arrays.reduction[0][redirected[0]] +=
      val_[edge_global] * x_[row_[edge_global]];
}

void SpmvTKernel::compute_phase(earth::FiberContext& ctx,
                                const core::CostTags&,
                                const core::PhaseView& phase,
                                core::ProcArrays& arrays) const {
  // Single-reference case: a pure gather-multiply-scatter stream over the
  // flattened indirection block, dispatched to the selected backend.
  ops::spmv_t_phase(phase.backend, ops::SpmvTArgs{
                                       .ia = phase.indir_row(0),
                                       .eg = phase.iter_global.data(),
                                       .row = row_.data(),
                                       .val = val_.data(),
                                       .x = x_.data(),
                                       .y = arrays.reduction[0].data(),
                                       .n = phase.num_iters,
                                       .tile = phase.tile_iters,
                                   });
  ctx.charge_flops(2 * phase.num_iters);
}

void SpmvTKernel::update_nodes(earth::FiberContext&, const core::CostTags&,
                               std::uint32_t, std::uint32_t, std::uint32_t,
                               core::ProcArrays&) const {}

std::unique_ptr<core::PhasedKernel> SpmvTKernel::clone_renumbered(
    std::span<const std::uint32_t> perm) const {
  // Only the output labels (column ids) are nodes here; the gather side
  // (row_, val_, x_) streams with the nonzero and is untouched.
  ER_EXPECTS(perm.size() == ncols_);
  auto clone = std::unique_ptr<SpmvTKernel>(new SpmvTKernel(*this));
  for (std::uint32_t& c : clone->col_) c = perm[c];
  return clone;
}

std::vector<double> SpmvTKernel::reference() const {
  std::vector<double> y(ncols_, 0.0);
  for (std::size_t j = 0; j < val_.size(); ++j)
    y[col_[j]] += val_[j] * x_[row_[j]];
  return y;
}

}  // namespace earthred::kernels
