#include "kernels/euler.hpp"

#include <cmath>

#include "kernels/ops_simd.hpp"
#include "support/check.hpp"

namespace earthred::kernels {

namespace {
constexpr std::uint32_t kVel = 0;  // array indices
constexpr std::uint32_t kPre = 1;
}  // namespace

EulerKernel::EulerKernel(mesh::Mesh mesh, double dt)
    : mesh_(std::move(mesh)), dt_(dt) {
  mesh_.validate();
  ER_EXPECTS_MSG(!mesh_.coords.empty(),
                 "euler needs node coordinates for edge coefficients");
  coef_.reserve(mesh_.num_edges());
  for (const mesh::Edge& e : mesh_.edges) {
    const auto& a = mesh_.coords[e.a];
    const auto& b = mesh_.coords[e.b];
    const double dx = a[0] - b[0];
    const double dy = a[1] - b[1];
    const double dz = a[2] - b[2];
    const double len = std::sqrt(dx * dx + dy * dy + dz * dz);
    coef_.push_back(1.0 / (1.0 + 64.0 * len));  // shorter edge, larger flux
  }
}

core::KernelShape EulerKernel::shape() const {
  return core::KernelShape{
      .num_nodes = mesh_.num_nodes,
      .num_edges = mesh_.num_edges(),
      .num_refs = 2,
      .num_reduction_arrays = 2,
      .num_node_read_arrays = 2,
  };
}

std::uint32_t EulerKernel::ref(std::uint32_t r, std::uint64_t edge) const {
  ER_EXPECTS(r < 2 && edge < mesh_.num_edges());
  return r == 0 ? mesh_.edges[edge].a : mesh_.edges[edge].b;
}

void EulerKernel::init_node_arrays(
    std::vector<std::vector<double>>& arrays) const {
  // Smooth initial state derived from node position: a pressure hill in
  // the middle of the domain, mild velocity gradient.
  for (std::uint32_t v = 0; v < mesh_.num_nodes; ++v) {
    const double x = mesh_.coords[v][0];
    const double y = mesh_.coords[v][1];
    const double z = mesh_.coords[v][2];
    arrays[kVel][v] = 0.1 * (x - 0.5);
    arrays[kPre][v] =
        1.0 + std::exp(-8.0 * ((x - 0.5) * (x - 0.5) +
                               (y - 0.5) * (y - 0.5) +
                               (z - 0.5) * (z - 0.5)));
  }
}

void EulerKernel::compute_edge(earth::FiberContext& ctx,
                               const core::CostTags& tags,
                               std::uint64_t edge_global,
                               std::uint64_t edge_slot,
                               std::span<const std::uint32_t> redirected,
                               core::ProcArrays& arrays) const {
  const std::uint32_t n1 = mesh_.edges[edge_global].a;
  const std::uint32_t n2 = mesh_.edges[edge_global].b;

  ctx.load(tags.edge_data, edge_slot, 8);
  ctx.load(tags.node_read[kVel], n1);
  ctx.load(tags.node_read[kVel], n2);
  ctx.load(tags.node_read[kPre], n1);
  ctx.load(tags.node_read[kPre], n2);

  const double c = coef_[edge_global];
  const double v1 = arrays.node_read[kVel][n1];
  const double v2 = arrays.node_read[kVel][n2];
  const double p1 = arrays.node_read[kPre][n1];
  const double p2 = arrays.node_read[kPre][n2];
  // Upwind-ish flux: pressure difference drives velocity residual,
  // velocity average advects pressure.
  const double vflux = c * (p1 - p2);
  const double pflux = c * 0.5 * (v1 + v2) + 0.25 * c * (p1 - p2);
  // A real euler flux evaluation is ~40-60 scalar FP operations per edge
  // (Riemann-solver terms, several divides); charge a representative
  // count rather than the simplified arithmetic above.
  ctx.charge_flops(48);

  // Equal-and-opposite accumulation into both end nodes.
  ctx.load(tags.reduction[kVel], redirected[0]);
  ctx.store(tags.reduction[kVel], redirected[0]);
  arrays.reduction[kVel][redirected[0]] += vflux;
  ctx.load(tags.reduction[kVel], redirected[1]);
  ctx.store(tags.reduction[kVel], redirected[1]);
  arrays.reduction[kVel][redirected[1]] -= vflux;
  ctx.load(tags.reduction[kPre], redirected[0]);
  ctx.store(tags.reduction[kPre], redirected[0]);
  arrays.reduction[kPre][redirected[0]] += pflux;
  ctx.load(tags.reduction[kPre], redirected[1]);
  ctx.store(tags.reduction[kPre], redirected[1]);
  arrays.reduction[kPre][redirected[1]] -= pflux;
  ctx.charge_flops(4);
}

void EulerKernel::compute_phase(earth::FiberContext& ctx,
                                const core::CostTags&,
                                const core::PhaseView& phase,
                                core::ProcArrays& arrays) const {
  // Same flux arithmetic as compute_edge, expression for expression, so
  // results are bit-identical; the batch loop lives in ops_simd with one
  // implementation per compute backend.
  ops::euler_phase(phase.backend,
                   ops::EulerArgs{
                       .ia1 = phase.indir_row(0),
                       .ia2 = phase.indir_row(1),
                       .eg = phase.iter_global.data(),
                       .edges = mesh_.edges.data(),
                       .coef = coef_.data(),
                       .vel = arrays.node_read[kVel].data(),
                       .pre = arrays.node_read[kPre].data(),
                       .dvel = arrays.reduction[kVel].data(),
                       .dpre = arrays.reduction[kPre].data(),
                       .n = phase.num_iters,
                       .tile = phase.tile_iters,
                   });
  ctx.charge_flops(52 * phase.num_iters);
}

void EulerKernel::update_nodes(earth::FiberContext& ctx,
                               const core::CostTags& tags,
                               std::uint32_t begin, std::uint32_t end,
                               std::uint32_t base,
                               core::ProcArrays& arrays) const {
  for (std::uint32_t v = begin; v < end; ++v) {
    const std::uint32_t i = base + (v - begin);
    ctx.load(tags.reduction[kVel], i);
    ctx.load(tags.reduction[kPre], i);
    ctx.load(tags.node_read[kVel], v);
    ctx.load(tags.node_read[kPre], v);
    ctx.charge_flops(4);
    ctx.store(tags.node_read[kVel], v);
    ctx.store(tags.node_read[kPre], v);
    arrays.node_read[kVel][v] += dt_ * arrays.reduction[kVel][i];
    arrays.node_read[kPre][v] += dt_ * arrays.reduction[kPre][i];
  }
}

std::unique_ptr<core::PhasedKernel> EulerKernel::clone_renumbered(
    std::span<const std::uint32_t> perm) const {
  // renumber() moves coordinates with their nodes and keeps edge order,
  // so the copied coef_ equals what the constructor would recompute from
  // the relabeled mesh bit for bit, and init_node_arrays produces the
  // permuted initial state.
  auto clone = std::unique_ptr<EulerKernel>(new EulerKernel(*this));
  clone->mesh_ = mesh::renumber(mesh_, perm);
  return clone;
}

}  // namespace earthred::kernels
