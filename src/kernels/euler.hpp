// euler: unstructured-mesh CFD kernel (derived from the class of codes the
// paper's euler benchmark represents [5]).
//
// Each time step sweeps the edges of the mesh: an edge computes a flux
// from the states of its two end nodes (pressure-difference and averaged
// velocity terms scaled by a per-edge geometric coefficient) and
// accumulates equal-and-opposite contributions into the nodes' residual
// arrays. The sweep-final node update relaxes the node state by the
// accumulated residuals.
//
//   reduction arrays : d_vel, d_pre (residuals; LHS-indirect)
//   node read arrays : vel, pre    (state; replicated, refreshed per sweep)
//   edge data        : coef        (geometric edge coefficient)
#pragma once

#include <cstdint>
#include <vector>

#include "core/kernel.hpp"
#include "mesh/mesh.hpp"

namespace earthred::kernels {

class EulerKernel final : public core::PhasedKernel {
 public:
  /// `dt` is the relaxation factor of the node update.
  explicit EulerKernel(mesh::Mesh mesh, double dt = 1e-3);

  core::KernelShape shape() const override;
  std::uint32_t ref(std::uint32_t r, std::uint64_t edge) const override;
  void init_node_arrays(
      std::vector<std::vector<double>>& arrays) const override;
  void compute_edge(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint64_t edge_global, std::uint64_t edge_slot,
                    std::span<const std::uint32_t> redirected,
                    core::ProcArrays& arrays) const override;
  void compute_phase(earth::FiberContext& ctx, const core::CostTags& tags,
                     const core::PhaseView& phase,
                     core::ProcArrays& arrays) const override;
  void update_nodes(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint32_t begin, std::uint32_t end,
                    std::uint32_t base,
                    core::ProcArrays& arrays) const override;

  std::unique_ptr<core::PhasedKernel> clone_renumbered(
      std::span<const std::uint32_t> perm) const override;

  const mesh::Mesh& mesh() const noexcept { return mesh_; }

 private:
  mesh::Mesh mesh_;
  std::vector<double> coef_;  ///< per-edge geometric coefficient
  double dt_;
};

}  // namespace earthred::kernels
