#include "kernels/adaptive_moldyn.hpp"

#include <vector>

#include "inspector/distribution.hpp"
#include "kernels/euler.hpp"
#include "kernels/moldyn.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace earthred::kernels {

namespace {

/// Per-processor count of owned iterations whose endpoints changed.
std::vector<std::uint64_t> changed_per_proc(
    const mesh::Mesh& before, const mesh::Mesh& after, std::uint32_t procs,
    inspector::Distribution dist, std::uint64_t* total_changed) {
  ER_EXPECTS(before.num_edges() == after.num_edges());
  const auto owned = inspector::distribute_iterations(after.num_edges(),
                                                      procs, dist);
  std::vector<std::uint64_t> changed(procs, 0);
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < procs; ++p) {
    for (const std::uint32_t e : owned[p]) {
      if (!(before.edges[e] == after.edges[e])) {
        ++changed[p];
        ++total;
      }
    }
  }
  if (total_changed) *total_changed += total;
  return changed;
}

/// Shared epoch loop for the rotation strategy. `make_kernel` builds the
/// per-epoch kernel from the current mesh.
template <typename MakeKernel>
AdaptiveResult adaptive_rotation_impl(mesh::Mesh m,
                                      std::uint64_t num_interactions,
                                      std::uint32_t epochs,
                                      std::uint32_t sweeps_per_epoch,
                                      double drift_sigma,
                                      std::uint64_t drift_seed,
                                      const MakeKernel& make_kernel,
                                      core::RotationOptions rotation,
                                      bool incremental) {
  ER_EXPECTS(epochs >= 1);
  rotation.sweeps = sweeps_per_epoch;
  rotation.collect_results = false;

  Xoshiro256 drift(drift_seed);
  AdaptiveResult result;
  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    if (epoch > 0) {
      const mesh::Mesh before = m;
      mesh::jitter_coords(m, drift_sigma, drift);
      mesh::rebuild_interactions(m, num_interactions);
      if (incremental) {
        rotation.inspector_work_items =
            changed_per_proc(before, m, rotation.num_procs,
                             rotation.distribution,
                             &result.changed_interactions);
      } else {
        rotation.inspector_work_items.clear();
        changed_per_proc(before, m, rotation.num_procs,
                         rotation.distribution,
                         &result.changed_interactions);
      }
    }
    const auto kernel = make_kernel(m);
    const core::RunResult r = core::run_rotation_engine(*kernel, rotation);
    result.total_cycles += r.total_cycles;
    result.inspector_cycles += r.inspector_cycles;
  }
  return result;
}

/// Shared epoch loop for the classic scheme (full communicating inspector
/// every epoch).
template <typename MakeKernel>
AdaptiveResult adaptive_classic_impl(mesh::Mesh m,
                                     std::uint64_t num_interactions,
                                     std::uint32_t epochs,
                                     std::uint32_t sweeps_per_epoch,
                                     double drift_sigma,
                                     std::uint64_t drift_seed,
                                     const MakeKernel& make_kernel,
                                     core::ClassicOptions classic) {
  ER_EXPECTS(epochs >= 1);
  classic.sweeps = sweeps_per_epoch;
  classic.collect_results = false;

  Xoshiro256 drift(drift_seed);
  AdaptiveResult result;
  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    if (epoch > 0) {
      const mesh::Mesh before = m;
      mesh::jitter_coords(m, drift_sigma, drift);
      mesh::rebuild_interactions(m, num_interactions);
      changed_per_proc(before, m, classic.num_procs, classic.distribution,
                       &result.changed_interactions);
    }
    const auto kernel = make_kernel(m);
    const core::RunResult r = core::run_classic_engine(*kernel, classic);
    result.total_cycles += r.total_cycles;
    result.inspector_cycles += r.inspector_cycles;
  }
  return result;
}

std::unique_ptr<core::PhasedKernel> make_moldyn(const mesh::Mesh& m) {
  return std::make_unique<MoldynKernel>(m);
}

std::unique_ptr<core::PhasedKernel> make_euler(const mesh::Mesh& m) {
  return std::make_unique<EulerKernel>(m);
}

}  // namespace

AdaptiveResult run_adaptive_moldyn_rotation(const AdaptiveOptions& adaptive,
                                            core::RotationOptions rotation,
                                            bool incremental) {
  return adaptive_rotation_impl(
      mesh::make_moldyn_lattice(adaptive.dataset),
      adaptive.dataset.num_interactions, adaptive.epochs,
      adaptive.sweeps_per_epoch, adaptive.drift_sigma, adaptive.drift_seed,
      make_moldyn, rotation, incremental);
}

AdaptiveResult run_adaptive_moldyn_classic(const AdaptiveOptions& adaptive,
                                           core::ClassicOptions classic) {
  return adaptive_classic_impl(
      mesh::make_moldyn_lattice(adaptive.dataset),
      adaptive.dataset.num_interactions, adaptive.epochs,
      adaptive.sweeps_per_epoch, adaptive.drift_sigma, adaptive.drift_seed,
      make_moldyn, classic);
}

AdaptiveResult run_adaptive_euler_rotation(const AdaptiveEulerOptions& a,
                                           core::RotationOptions rotation,
                                           bool incremental) {
  return adaptive_rotation_impl(mesh::make_geometric_mesh(a.dataset),
                                a.dataset.num_edges, a.epochs,
                                a.sweeps_per_epoch, a.drift_sigma,
                                a.drift_seed, make_euler, rotation,
                                incremental);
}

AdaptiveResult run_adaptive_euler_classic(const AdaptiveEulerOptions& a,
                                          core::ClassicOptions classic) {
  return adaptive_classic_impl(mesh::make_geometric_mesh(a.dataset),
                               a.dataset.num_edges, a.epochs,
                               a.sweeps_per_epoch, a.drift_sigma,
                               a.drift_seed, make_euler, classic);
}

}  // namespace earthred::kernels
