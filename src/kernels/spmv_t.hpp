// Transposed sparse matrix-vector product as an irregular reduction:
//
//   for each nonzero j (row r_j, column c_j, value v_j):
//     y[c_j] += v_j * x[r_j]
//
// This is the *single distinct indirection reference* case of Sec. 3 —
// the paper notes that here the LightInspector degenerates: every update
// happens while the element is owned, so no remote buffer and no second
// loop are needed. The kernel exists to exercise that path end-to-end
// (tests assert zero buffer slots) and as a realistic library citizen
// (A^T x shows up in least-squares and graph push-style algorithms).
#pragma once

#include <cstdint>
#include <vector>

#include "core/kernel.hpp"
#include "sparse/csr.hpp"

namespace earthred::kernels {

class SpmvTKernel final : public core::PhasedKernel {
 public:
  /// Computes y = A^T * x (y has A.ncols() elements). `x` is copied.
  SpmvTKernel(const sparse::CsrMatrix& A, std::vector<double> x);

  core::KernelShape shape() const override;
  std::uint32_t ref(std::uint32_t r, std::uint64_t edge) const override;
  void init_node_arrays(
      std::vector<std::vector<double>>& arrays) const override;
  void compute_edge(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint64_t edge_global, std::uint64_t edge_slot,
                    std::span<const std::uint32_t> redirected,
                    core::ProcArrays& arrays) const override;
  void compute_phase(earth::FiberContext& ctx, const core::CostTags& tags,
                     const core::PhaseView& phase,
                     core::ProcArrays& arrays) const override;
  void update_nodes(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint32_t begin, std::uint32_t end,
                    std::uint32_t base,
                    core::ProcArrays& arrays) const override;

  std::unique_ptr<core::PhasedKernel> clone_renumbered(
      std::span<const std::uint32_t> perm) const override;

  /// Host-side reference: y = A^T x.
  std::vector<double> reference() const;

 private:
  std::uint32_t ncols_;
  std::vector<std::uint32_t> row_;  ///< per nonzero
  std::vector<std::uint32_t> col_;  ///< per nonzero (the indirection)
  std::vector<double> val_;
  std::vector<double> x_;
};

}  // namespace earthred::kernels
