// Adaptive irregular reductions (the paper's Sec. 7 future work, built out
// here as an extension): moldyn with periodic neighbour-list rebuilds.
//
// Every `sweeps_per_epoch` time steps the molecules have drifted enough
// that the interaction list is rebuilt from current coordinates. Under the
// rotation strategy this costs one LightInspector re-run — purely local —
// and with the *incremental* LightInspector only the changed interactions
// are reprocessed. Under the classic scheme every rebuild repeats the
// communicating inspector (translation-table exchange), which is the
// overhead the paper argues makes conventional approaches unsuited to
// adaptive problems.
#pragma once

#include <cstdint>

#include "core/classic_engine.hpp"
#include "core/reduction_engine.hpp"
#include "earth/types.hpp"
#include "mesh/generators.hpp"

namespace earthred::kernels {

struct AdaptiveOptions {
  mesh::MoldynParams dataset{9, 26244, 0.05, 19941122};
  std::uint32_t epochs = 5;            ///< neighbour-list rebuilds
  std::uint32_t sweeps_per_epoch = 10; ///< time steps between rebuilds
  double drift_sigma = 0.04;           ///< coordinate drift per epoch
  std::uint64_t drift_seed = 7;
};

struct AdaptiveResult {
  earth::Cycles total_cycles = 0;
  earth::Cycles inspector_cycles = 0;  ///< preprocessing across all epochs
  std::uint64_t changed_interactions = 0;  ///< total across rebuilds
};

/// Rotation strategy; `incremental` switches the post-first-epoch
/// inspector charge from all local iterations to only the changed ones.
AdaptiveResult run_adaptive_moldyn_rotation(const AdaptiveOptions& adaptive,
                                            core::RotationOptions rotation,
                                            bool incremental);

/// Classic inspector/executor: the full communicating inspector re-runs
/// every epoch.
AdaptiveResult run_adaptive_moldyn_classic(const AdaptiveOptions& adaptive,
                                           core::ClassicOptions classic);

/// Adaptive euler: an unstructured mesh whose connectivity drifts between
/// epochs (the adaptive-CFD remeshing regime the paper targets). Same
/// protocol as adaptive moldyn, on the geometric mesh generator.
struct AdaptiveEulerOptions {
  mesh::GeomMeshParams dataset{2800, 17377, 20020415};
  std::uint32_t epochs = 5;
  std::uint32_t sweeps_per_epoch = 10;
  double drift_sigma = 0.01;  ///< in unit-square coordinates
  std::uint64_t drift_seed = 9;
};

AdaptiveResult run_adaptive_euler_rotation(const AdaptiveEulerOptions& a,
                                           core::RotationOptions rotation,
                                           bool incremental);

AdaptiveResult run_adaptive_euler_classic(const AdaptiveEulerOptions& a,
                                          core::ClassicOptions classic);

}  // namespace earthred::kernels
