#include "kernels/moldyn.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/ops_simd.hpp"
#include "support/check.hpp"

namespace earthred::kernels {

MoldynKernel::MoldynKernel(mesh::Mesh interactions, double dt)
    : mesh_(std::move(interactions)), dt_(dt) {
  mesh_.validate();
  ER_EXPECTS_MSG(!mesh_.coords.empty(),
                 "moldyn needs molecule coordinates");
}

core::KernelShape MoldynKernel::shape() const {
  return core::KernelShape{
      .num_nodes = mesh_.num_nodes,
      .num_edges = mesh_.num_edges(),
      .num_refs = 2,
      .num_reduction_arrays = 3,
      .num_node_read_arrays = 3,
  };
}

std::uint32_t MoldynKernel::ref(std::uint32_t r, std::uint64_t edge) const {
  ER_EXPECTS(r < 2 && edge < mesh_.num_edges());
  return r == 0 ? mesh_.edges[edge].a : mesh_.edges[edge].b;
}

void MoldynKernel::init_node_arrays(
    std::vector<std::vector<double>>& arrays) const {
  for (std::uint32_t v = 0; v < mesh_.num_nodes; ++v)
    for (int d = 0; d < 3; ++d)
      arrays[static_cast<std::size_t>(d)][v] = mesh_.coords[v][d];
}

void MoldynKernel::compute_edge(earth::FiberContext& ctx,
                                const core::CostTags& tags,
                                std::uint64_t edge_global,
                                std::uint64_t edge_slot,
                                std::span<const std::uint32_t> redirected,
                                core::ProcArrays& arrays) const {
  (void)edge_slot;
  const std::uint32_t m1 = mesh_.edges[edge_global].a;
  const std::uint32_t m2 = mesh_.edges[edge_global].b;

  double d[3];
  for (int a = 0; a < 3; ++a) {
    ctx.load(tags.node_read[static_cast<std::size_t>(a)], m1);
    ctx.load(tags.node_read[static_cast<std::size_t>(a)], m2);
    d[a] = arrays.node_read[static_cast<std::size_t>(a)][m1] -
           arrays.node_read[static_cast<std::size_t>(a)][m2];
  }
  // Softened LJ-style magnitude: repulsive near, attractive far, bounded
  // at r -> 0 by the +0.25 softening.
  const double r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + 0.25;
  const double inv2 = 1.0 / r2;
  const double inv6 = inv2 * inv2 * inv2;
  const double mag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
  const double clamped = std::clamp(mag, -32.0, 32.0);
  // The LJ evaluation costs ~30 FP operations including a divide (~20
  // cycles on an i860-class FPU); charge a representative count.
  ctx.charge_flops(40);

  for (int a = 0; a < 3; ++a) {
    const auto ra = static_cast<std::size_t>(a);
    const double f = clamped * d[a];
    ctx.load(tags.reduction[ra], redirected[0]);
    ctx.store(tags.reduction[ra], redirected[0]);
    arrays.reduction[ra][redirected[0]] += f;
    ctx.load(tags.reduction[ra], redirected[1]);
    ctx.store(tags.reduction[ra], redirected[1]);
    arrays.reduction[ra][redirected[1]] -= f;
    ctx.charge_flops(3);
  }
}

void MoldynKernel::compute_phase(earth::FiberContext& ctx,
                                 const core::CostTags&,
                                 const core::PhaseView& phase,
                                 core::ProcArrays& arrays) const {
  // Mirrors compute_edge's LJ evaluation exactly (same operations, same
  // order → bit-identical forces); the batch loop lives in ops_simd with
  // one implementation per compute backend.
  ops::moldyn_phase(phase.backend,
                    ops::MoldynArgs{
                        .ia1 = phase.indir_row(0),
                        .ia2 = phase.indir_row(1),
                        .eg = phase.iter_global.data(),
                        .edges = mesh_.edges.data(),
                        .px = arrays.node_read[0].data(),
                        .py = arrays.node_read[1].data(),
                        .pz = arrays.node_read[2].data(),
                        .fx = arrays.reduction[0].data(),
                        .fy = arrays.reduction[1].data(),
                        .fz = arrays.reduction[2].data(),
                        .n = phase.num_iters,
                        .tile = phase.tile_iters,
                    });
  ctx.charge_flops(49 * phase.num_iters);
}

void MoldynKernel::update_nodes(earth::FiberContext& ctx,
                                const core::CostTags& tags,
                                std::uint32_t begin, std::uint32_t end,
                                std::uint32_t base,
                                core::ProcArrays& arrays) const {
  for (std::uint32_t v = begin; v < end; ++v) {
    const std::uint32_t i = base + (v - begin);
    for (int a = 0; a < 3; ++a) {
      const auto ra = static_cast<std::size_t>(a);
      ctx.load(tags.reduction[ra], i);
      ctx.load(tags.node_read[ra], v);
      ctx.charge_flops(2);
      ctx.store(tags.node_read[ra], v);
      arrays.node_read[ra][v] += dt_ * arrays.reduction[ra][i];
    }
  }
}

std::unique_ptr<core::PhasedKernel> MoldynKernel::clone_renumbered(
    std::span<const std::uint32_t> perm) const {
  auto clone = std::unique_ptr<MoldynKernel>(new MoldynKernel(*this));
  clone->mesh_ = mesh::renumber(mesh_, perm);
  return clone;
}

}  // namespace earthred::kernels
