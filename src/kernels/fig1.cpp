#include "kernels/fig1.hpp"

#include "kernels/ops_simd.hpp"
#include "support/check.hpp"

namespace earthred::kernels {

Fig1Kernel::Fig1Kernel(mesh::Mesh mesh, std::vector<double> y, double c)
    : mesh_(std::move(mesh)), y_(std::move(y)), c_(c) {
  mesh_.validate();
  ER_EXPECTS(y_.size() == mesh_.num_edges());
}

Fig1Kernel Fig1Kernel::with_integer_values(mesh::Mesh mesh) {
  std::vector<double> y;
  y.reserve(mesh.num_edges());
  for (std::uint64_t e = 0; e < mesh.num_edges(); ++e)
    y.push_back(static_cast<double>((e % 13) + 1));
  return Fig1Kernel(std::move(mesh), std::move(y), 2.0);
}

core::KernelShape Fig1Kernel::shape() const {
  return core::KernelShape{
      .num_nodes = mesh_.num_nodes,
      .num_edges = mesh_.num_edges(),
      .num_refs = 2,
      .num_reduction_arrays = 1,
      .num_node_read_arrays = 0,
  };
}

std::uint32_t Fig1Kernel::ref(std::uint32_t r, std::uint64_t edge) const {
  ER_EXPECTS(r < 2 && edge < mesh_.num_edges());
  return r == 0 ? mesh_.edges[edge].a : mesh_.edges[edge].b;
}

void Fig1Kernel::init_node_arrays(
    std::vector<std::vector<double>>&) const {}

void Fig1Kernel::compute_edge(earth::FiberContext& ctx,
                              const core::CostTags& tags,
                              std::uint64_t edge_global,
                              std::uint64_t edge_slot,
                              std::span<const std::uint32_t> redirected,
                              core::ProcArrays& arrays) const {
  ctx.load(tags.edge_data, edge_slot, 8);
  const double contribution = y_[edge_global] * c_;
  ctx.charge_flops(1);
  for (std::uint32_t r = 0; r < 2; ++r) {
    ctx.load(tags.reduction[0], redirected[r]);
    ctx.charge_flops(1);
    ctx.store(tags.reduction[0], redirected[r]);
    arrays.reduction[0][redirected[r]] += contribution;
  }
}

void Fig1Kernel::compute_phase(earth::FiberContext& ctx,
                               const core::CostTags&,
                               const core::PhaseView& phase,
                               core::ProcArrays& arrays) const {
  // Same floating-point operations in the same order as compute_edge;
  // the batch loop itself lives in ops_simd with one implementation per
  // compute backend, all bit-identical.
  ops::fig1_phase(phase.backend, ops::Fig1Args{
                                     .ia1 = phase.indir_row(0),
                                     .ia2 = phase.indir_row(1),
                                     .eg = phase.iter_global.data(),
                                     .y = y_.data(),
                                     .c = c_,
                                     .x = arrays.reduction[0].data(),
                                     .n = phase.num_iters,
                                     .tile = phase.tile_iters,
                                 });
  ctx.charge_flops(3 * phase.num_iters);
}

void Fig1Kernel::update_nodes(earth::FiberContext&, const core::CostTags&,
                              std::uint32_t, std::uint32_t, std::uint32_t,
                              core::ProcArrays&) const {}

std::unique_ptr<core::PhasedKernel> Fig1Kernel::clone_renumbered(
    std::span<const std::uint32_t> perm) const {
  // Edge order and edge values are untouched; only the endpoint labels
  // move, so every contribution lands in the relabeled slot of the same
  // target.
  auto clone = std::unique_ptr<Fig1Kernel>(new Fig1Kernel(*this));
  clone->mesh_ = mesh::renumber(mesh_, perm);
  return clone;
}

}  // namespace earthred::kernels
