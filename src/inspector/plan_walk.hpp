// Shared traversal over LightInspector output.
//
// Three consumers walk the same phase structure — ExecutionPlan::byte_size
// (the PlanCache's LRU accounting), the plan verifier, and the benches'
// plan-footprint reporting — and used to each hand-roll the loop. This
// header is the single traversal they share: for_each_phase() visits every
// phase of an InspectorResult, and the two concrete walks (byte size,
// summary stats) are built on it.
#pragma once

#include <cstdint>

#include "inspector/light_inspector.hpp"

namespace earthred::inspector {

/// Visits every phase of `insp` in phase order: f(phase_index, phase).
template <typename F>
void for_each_phase(const InspectorResult& insp, F&& f) {
  for (std::uint32_t ph = 0; ph < insp.phases.size(); ++ph)
    f(ph, insp.phases[ph]);
}

/// One-pass summary of an InspectorResult's schedule.
struct PlanWalkStats {
  std::uint64_t iterations = 0;     ///< entries across all phases
  std::uint64_t direct_refs = 0;    ///< references resolved in-phase
  std::uint64_t deferred_refs = 0;  ///< references redirected to a buffer
  std::uint64_t fold_entries = 0;   ///< second-loop copy entries
  std::uint64_t bytes = 0;          ///< heap footprint (see byte_size)
};

/// Walks `insp` once, counting iterations, direct vs deferred references
/// (split at `num_elements`), fold entries, and the heap footprint.
PlanWalkStats walk_inspector(const InspectorResult& insp,
                             std::uint32_t num_elements);

/// Heap footprint of one InspectorResult in bytes (allocations only; the
/// struct headers are the caller's sizeof). ExecutionPlan::byte_size sums
/// this per processor; the PlanCache LRU budget is only honest if growth
/// anywhere in the phase data is visible here.
std::uint64_t inspector_byte_size(const InspectorResult& insp);

}  // namespace earthred::inspector
