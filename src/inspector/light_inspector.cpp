#include "inspector/light_inspector.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "support/check.hpp"

namespace earthred::inspector {

void PhaseSchedule::flatten_indir() {
  // clear() releases an adopted view without copying; the rows may still
  // be views into the same mapping (kept alive by the plan's storage
  // handle), so appending them below reads valid memory.
  indir_flat.clear();
  indir_flat.reserve(indir.size() * iter_global.size());
  for (const U32Buf& row : indir) indir_flat.append(row);
}

std::vector<std::uint64_t> InspectorResult::phase_sizes() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(phases.size());
  for (const PhaseSchedule& p : phases) sizes.push_back(p.iter_global.size());
  return sizes;
}

std::uint64_t InspectorResult::total_deferred() const {
  std::uint64_t n = 0;
  for (const PhaseSchedule& p : phases) n += p.copy_dst.size();
  return n;
}

namespace {

void check_refs(const RotationSchedule& sched, const IterationRefs& iters) {
  ER_EXPECTS_MSG(!iters.refs.empty(), "at least one indirection reference");
  for (const auto& row : iters.refs) {
    ER_EXPECTS_MSG(row.size() == iters.num_iterations(),
                   "ragged indirection reference rows");
    for (std::uint32_t e : row)
      ER_EXPECTS_MSG(e < sched.num_elements(),
                     "indirection value out of range");
  }
}

/// Shared slot allocator for the full and incremental paths.
class SlotAllocator {
 public:
  SlotAllocator(InspectorResult& result, const RotationSchedule& sched,
                std::uint32_t proc, bool dedup)
      : result_(result), sched_(sched), proc_(proc), dedup_(dedup) {}

  /// Returns the redirected index (num_elements + slot) for a reference to
  /// `elem` that is owned only in a later phase, adding the second-loop
  /// copy entry in `elem`'s owning phase when a new slot is created.
  std::uint32_t defer(std::uint32_t elem) {
    if (dedup_) {
      const auto it = dedup_map_.find(elem);
      if (it != dedup_map_.end())
        return sched_.num_elements() + it->second;
    }
    std::uint32_t slot;
    if (!result_.free_slots.empty()) {
      slot = result_.free_slots.back();
      result_.free_slots.pop_back();
      result_.slot_elem[slot] = elem;
    } else {
      slot = result_.num_buffer_slots++;
      result_.slot_elem.push_back(elem);
    }
    if (dedup_) dedup_map_.emplace(elem, slot);
    const std::uint32_t fold_phase =
        sched_.owning_phase(proc_, sched_.portion_of(elem));
    result_.phases[fold_phase].copy_dst.push_back(elem);
    result_.phases[fold_phase].copy_src.push_back(sched_.num_elements() +
                                                  slot);
    return sched_.num_elements() + slot;
  }

 private:
  InspectorResult& result_;
  const RotationSchedule& sched_;
  std::uint32_t proc_;
  bool dedup_;
  std::unordered_map<std::uint32_t, std::uint32_t> dedup_map_;
};

/// Assigns one iteration: computes its phase, appends it with redirected
/// references.
void place_iteration(const RotationSchedule& sched, std::uint32_t proc,
                     const IterationRefs& iters, std::uint32_t local,
                     InspectorResult& result, SlotAllocator& slots) {
  const std::size_t nrefs = iters.num_refs();
  // Step 1 (per iteration): earliest owning phase over all references.
  std::uint32_t assigned = sched.phases_per_sweep();
  for (std::size_t r = 0; r < nrefs; ++r) {
    const std::uint32_t ph =
        sched.owning_phase(proc, sched.portion_of(iters.refs[r][local]));
    assigned = std::min(assigned, ph);
  }
  // Step 2: append to the phase with redirected references.
  PhaseSchedule& phase = result.phases[assigned];
  phase.iter_global.push_back(iters.global_iter[local]);
  phase.iter_local.push_back(local);
  for (std::size_t r = 0; r < nrefs; ++r) {
    const std::uint32_t elem = iters.refs[r][local];
    const std::uint32_t ph = sched.owning_phase(proc, sched.portion_of(elem));
    phase.indir[r].push_back(ph == assigned ? elem : slots.defer(elem));
  }
  result.assigned_phase[local] = assigned;
}

}  // namespace

InspectorResult run_light_inspector(const RotationSchedule& sched,
                                    std::uint32_t proc,
                                    const IterationRefs& iters,
                                    const LightInspectorOptions& opt) {
  ER_EXPECTS(proc < sched.num_procs());
  check_refs(sched, iters);

  InspectorResult result;
  result.phases.resize(sched.phases_per_sweep());
  for (PhaseSchedule& p : result.phases) p.indir.resize(iters.num_refs());
  result.assigned_phase.assign(iters.num_iterations(), 0);

  SlotAllocator slots(result, sched, proc, opt.dedup_buffers);
  for (std::uint32_t i = 0; i < iters.num_iterations(); ++i)
    place_iteration(sched, proc, iters, i, result, slots);

  for (PhaseSchedule& p : result.phases) p.flatten_indir();
  result.local_array_size =
      static_cast<std::uint64_t>(sched.num_elements()) +
      result.num_buffer_slots;
  return result;
}

// The sparse incremental update. The cost model is what justifies its
// existence (bench_plan_store gates patch >= 2x faster than a rebuild),
// so the implementation leans hard on one structural fact: the base
// result is CANONICAL — the fresh inspector (without dedup) allocates one
// buffer slot per deferred reference in (local iteration, ref slot)
// lexicographic order, so a slot id IS the rank of its deferred reference
// in that order, and slot ids increase with position. Removing the
// changed iterations and re-inserting them therefore renumbers the
// surviving slots by a piecewise-constant shift that can be derived from
// the freed slots and the re-inserted references alone, via one merge
// over the slot list — no full re-ranking of every reference. The only
// O(total refs) work left is two branch-light sweeps of the resident
// rows: a redirect count (to position the changed iterations among the
// survivors) and the redirect rewrite itself.
InspectorResult update_light_inspector(const RotationSchedule& sched,
                                       std::uint32_t proc,
                                       const InspectorResult& previous,
                                       std::span<const ChangedIteration> changes,
                                       const LightInspectorOptions& opt) {
  ER_EXPECTS(proc < sched.num_procs());
  ER_EXPECTS_MSG(!opt.dedup_buffers,
                 "incremental update supports the paper's one-slot-per-"
                 "reference scheme only");
  ER_EXPECTS_MSG(previous.free_slots.empty(),
                 "base result must be canonical (a fresh run or the output "
                 "of a prior update)");
  const std::uint32_t n_elems = sched.num_elements();
  const std::size_t n_iters = previous.assigned_phase.size();
  const std::size_t num_refs =
      previous.phases.empty() ? 0 : previous.phases[0].indir.size();
  for (std::size_t i = 0; i < changes.size(); ++i) {
    const ChangedIteration& ch = changes[i];
    ER_EXPECTS_MSG(ch.local < n_iters, "changed iteration index out of range");
    ER_EXPECTS_MSG(i == 0 || changes[i - 1].local < ch.local,
                   "changes must be sorted by local index without duplicates");
    ER_EXPECTS_MSG(ch.refs.size() == num_refs,
                   "one new reference value per reference slot");
    for (std::uint32_t v : ch.refs)
      ER_EXPECTS_MSG(v < n_elems, "indirection value out of range");
  }

  InspectorResult result = previous;
  if (changes.empty()) {
    result.local_array_size =
        static_cast<std::uint64_t>(n_elems) + result.num_buffer_slots;
    return result;
  }

  std::vector<std::uint32_t> cl;  // sorted changed locals
  cl.reserve(changes.size());
  for (const ChangedIteration& ch : changes) cl.push_back(ch.local);

  // --- 1. Remove the changed iterations from their old phases, freeing
  // their buffer slots. Canonicity of the base means each freed slot id
  // is the old rank of that deferred reference.
  std::vector<std::uint32_t> affected;  // phases that lost iterations
  for (std::uint32_t c : cl) {
    const std::uint32_t ph = result.assigned_phase[c];
    if (std::find(affected.begin(), affected.end(), ph) == affected.end())
      affected.push_back(ph);
  }
  struct FreedSlot {
    std::uint32_t slot;
    std::uint32_t local;  // the changed iteration it belonged to
  };
  std::vector<FreedSlot> freed;
  for (std::uint32_t ph : affected) {
    PhaseSchedule& phase = result.phases[ph];
    const std::size_t n = phase.iter_local.size();
    std::span<std::uint32_t> il = phase.iter_local.mutate();
    std::span<std::uint32_t> ig = phase.iter_global.mutate();
    std::vector<std::span<std::uint32_t>> rows;
    rows.reserve(phase.indir.size());
    for (U32Buf& row : phase.indir) rows.push_back(row.mutate());
    std::size_t w = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (std::binary_search(cl.begin(), cl.end(), il[j])) {
        for (const auto& row : rows)
          if (row[j] >= n_elems) {
            const std::uint32_t slot = row[j] - n_elems;
            result.free_slots.push_back(slot);
            freed.push_back({slot, il[j]});
          }
        continue;  // drop this entry
      }
      ig[w] = ig[j];
      il[w] = il[j];
      for (auto& row : rows) row[w] = row[j];
      ++w;
    }
    phase.iter_global.resize(w);
    phase.iter_local.resize(w);
    for (U32Buf& row : phase.indir) row.resize(w);
  }
  // The fold entries that fed the freed slots are NOT compacted here:
  // step 6 regenerates the second loop of every phase whose lists differ
  // from canonical, which necessarily includes every phase with a stale
  // entry — dropping them now would be a second pass for nothing.

  // --- 2. A[i]: number of old deferred references at positions before
  // (changes[i].local, 0) — the changed iteration's place in the old slot
  // order. Counted as surviving redirects with iter_local < local (one
  // branch-light sweep of the resident rows) plus the freed slots of
  // earlier changed iterations.
  std::vector<std::uint32_t> A(cl.size(), 0);
  {
    std::vector<std::uint32_t> bump(cl.size() + 1, 0);
    for (const PhaseSchedule& phase : result.phases) {
      const std::uint32_t* il = phase.iter_local.data();
      for (const U32Buf& rowbuf : phase.indir) {
        const std::uint32_t* row = rowbuf.data();
        const std::size_t n = rowbuf.size();
        for (std::size_t j = 0; j < n; ++j)
          if (row[j] >= n_elems)
            ++bump[static_cast<std::size_t>(
                std::upper_bound(cl.begin(), cl.end(), il[j]) - cl.begin())];
      }
    }
    std::vector<std::uint32_t> freed_per(cl.size(), 0);
    for (const FreedSlot& f : freed)
      ++freed_per[static_cast<std::size_t>(
          std::lower_bound(cl.begin(), cl.end(), f.local) - cl.begin())];
    std::uint32_t surviving = 0, freed_before = 0;
    for (std::size_t i = 0; i < cl.size(); ++i) {
      surviving += bump[i];
      A[i] = surviving + freed_before;
      freed_before += freed_per[i];
    }
  }

  // --- 3. Re-insert the changed iterations with their new references,
  // recording where each one landed. Insertion order follows `changes`
  // (ascending local), so each phase's appended tail is already sorted.
  SlotAllocator slots(result, sched, proc, /*dedup=*/false);
  struct Landing {
    std::uint32_t phase;
    std::uint32_t pos;
  };
  std::vector<Landing> landed;
  landed.reserve(changes.size());
  for (const ChangedIteration& ch : changes) {
    std::uint32_t assigned = sched.phases_per_sweep();
    for (std::uint32_t v : ch.refs)
      assigned = std::min(assigned,
                          sched.owning_phase(proc, sched.portion_of(v)));
    PhaseSchedule& phase = result.phases[assigned];
    landed.push_back(
        {assigned, static_cast<std::uint32_t>(phase.iter_global.size())});
    phase.iter_global.push_back(ch.global);
    phase.iter_local.push_back(ch.local);
    for (std::size_t r = 0; r < num_refs; ++r) {
      const std::uint32_t elem = ch.refs[r];
      const std::uint32_t ph =
          sched.owning_phase(proc, sched.portion_of(elem));
      phase.indir[r].push_back(ph == assigned ? elem : slots.defer(elem));
    }
    result.assigned_phase[ch.local] = assigned;
  }

  // --- 4. Canonical renumbering as a merge. Surviving slots keep their
  // relative order (their ranks all shift by the same amount between two
  // consecutive change positions); each new deferred reference of change
  // i sits immediately before survivor rank A[i] - |freed below A[i]|,
  // ordered among its peers by (local, ref). One pass over the slot ids
  // yields both the final slot_elem and the temp-id -> final-id map.
  std::vector<std::uint32_t> freed_sorted;
  freed_sorted.reserve(freed.size());
  for (const FreedSlot& f : freed) freed_sorted.push_back(f.slot);
  std::sort(freed_sorted.begin(), freed_sorted.end());

  struct NewRef {
    std::uint32_t key;   // survivor rank it precedes
    std::uint32_t tmp;   // slot id the allocator handed out
    std::uint32_t elem;  // element it folds into
  };
  std::vector<NewRef> newrefs;
  for (std::size_t i = 0; i < changes.size(); ++i) {
    const std::uint32_t key =
        A[i] - static_cast<std::uint32_t>(
                   std::lower_bound(freed_sorted.begin(), freed_sorted.end(),
                                    A[i]) -
                   freed_sorted.begin());
    const PhaseSchedule& phase = result.phases[landed[i].phase];
    for (std::size_t r = 0; r < num_refs; ++r) {
      const std::uint32_t v = phase.indir[r][landed[i].pos];
      if (v >= n_elems)
        newrefs.push_back({key, v - n_elems, result.slot_elem[v - n_elems]});
    }
  }

  const std::uint32_t s_old = previous.num_buffer_slots;
  // Indexed by the ids currently in the rows: surviving old ids plus
  // whatever the allocator handed out (reused freed ids and fresh ids
  // starting at s_old).
  std::vector<std::uint32_t> slot_map(s_old + newrefs.size());
  std::vector<std::uint32_t> new_slot_elem;
  new_slot_elem.reserve(s_old - freed_sorted.size() + newrefs.size());
  {
    std::size_t ni = 0, fi = 0;
    std::uint32_t survivor_rank = 0;
    for (std::uint32_t s = 0; s < s_old; ++s) {
      if (fi < freed_sorted.size() && freed_sorted[fi] == s) {
        ++fi;
        continue;
      }
      while (ni < newrefs.size() && newrefs[ni].key <= survivor_rank) {
        slot_map[newrefs[ni].tmp] =
            static_cast<std::uint32_t>(new_slot_elem.size());
        new_slot_elem.push_back(newrefs[ni].elem);
        ++ni;
      }
      slot_map[s] = static_cast<std::uint32_t>(new_slot_elem.size());
      new_slot_elem.push_back(previous.slot_elem[s]);
      ++survivor_rank;
    }
    for (; ni < newrefs.size(); ++ni) {
      slot_map[newrefs[ni].tmp] =
          static_cast<std::uint32_t>(new_slot_elem.size());
      new_slot_elem.push_back(newrefs[ni].elem);
    }
  }

  // --- 5. Restore increasing-local-iteration order in the phases that
  // grew a tail (the fresh run's emission order). The body kept its order
  // through removal and the tail was appended in ascending order, so this
  // is a two-pointer merge, not a sort.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tails;  // phase, count
  for (const Landing& l : landed) {
    auto it = std::find_if(tails.begin(), tails.end(),
                           [&](const auto& t) { return t.first == l.phase; });
    if (it == tails.end())
      tails.emplace_back(l.phase, 1);
    else
      ++it->second;
  }
  for (const auto& [ph, t] : tails) {
    PhaseSchedule& phase = result.phases[ph];
    const std::size_t n = phase.iter_local.size();
    const std::uint32_t* il = phase.iter_local.data();
    const std::size_t body = n - t;
    if (body == 0 || il[body - 1] < il[body]) continue;  // already ordered
    std::vector<std::uint32_t> idx(n);
    std::size_t b = 0, ti = body, w = 0;
    while (b < body && ti < n)
      idx[w++] = static_cast<std::uint32_t>(il[b] < il[ti] ? b++ : ti++);
    while (b < body) idx[w++] = static_cast<std::uint32_t>(b++);
    while (ti < n) idx[w++] = static_cast<std::uint32_t>(ti++);
    const auto apply = [&](U32Buf& buf) {
      const std::uint32_t* src = buf.data();
      std::vector<std::uint32_t> out(n);
      for (std::size_t j = 0; j < n; ++j) out[j] = src[idx[j]];
      buf.clear();
      buf.append(out);
    };
    apply(phase.iter_global);
    apply(phase.iter_local);
    for (U32Buf& row : phase.indir) apply(row);
  }

  // --- 6. Rewrite redirects through the renumbering map. Rows whose
  // redirects all keep their ids are left untouched — for a plan patched
  // off a store-loaded base they stay zero-copy views into the mapping.
  std::vector<std::uint32_t> dirty;  // phases needing re-flatten
  const auto mark_dirty = [&](std::uint32_t ph) {
    if (std::find(dirty.begin(), dirty.end(), ph) == dirty.end())
      dirty.push_back(ph);
  };
  for (std::uint32_t ph : affected) mark_dirty(ph);
  for (const auto& [ph, t] : tails) mark_dirty(ph);
  for (std::uint32_t ph = 0;
       ph < static_cast<std::uint32_t>(result.phases.size()); ++ph) {
    PhaseSchedule& phase = result.phases[ph];
    for (U32Buf& rowbuf : phase.indir) {
      const std::uint32_t* row = rowbuf.data();
      const std::size_t n = rowbuf.size();
      std::size_t j = 0;
      while (j < n &&
             !(row[j] >= n_elems && slot_map[row[j] - n_elems] + n_elems !=
                                        row[j]))
        ++j;
      if (j == n) continue;
      std::span<std::uint32_t> wrow = rowbuf.mutate();
      for (; j < n; ++j)
        if (wrow[j] >= n_elems)
          wrow[j] = n_elems + slot_map[wrow[j] - n_elems];
      mark_dirty(ph);
    }
  }

  // --- 7. Regenerate the second loop in canonical slot order (the fresh
  // run appends each fold entry at allocation time, i.e. ascending slot).
  // Phases whose lists come out unchanged keep their adopted buffers.
  {
    std::vector<std::uint32_t> fold_of(new_slot_elem.size());
    std::vector<std::uint32_t> fold_count(result.phases.size(), 0);
    for (std::size_t s = 0; s < new_slot_elem.size(); ++s) {
      fold_of[s] = sched.owning_phase(proc, sched.portion_of(new_slot_elem[s]));
      ++fold_count[fold_of[s]];
    }
    std::vector<std::vector<std::uint32_t>> cd(result.phases.size());
    std::vector<std::vector<std::uint32_t>> cs(result.phases.size());
    for (std::size_t ph = 0; ph < result.phases.size(); ++ph) {
      cd[ph].reserve(fold_count[ph]);
      cs[ph].reserve(fold_count[ph]);
    }
    for (std::size_t s = 0; s < new_slot_elem.size(); ++s) {
      cd[fold_of[s]].push_back(new_slot_elem[s]);
      cs[fold_of[s]].push_back(n_elems + static_cast<std::uint32_t>(s));
    }
    for (std::size_t ph = 0; ph < result.phases.size(); ++ph) {
      PhaseSchedule& phase = result.phases[ph];
      if (phase.copy_dst == cd[ph] && phase.copy_src == cs[ph]) continue;
      phase.copy_dst.clear();
      phase.copy_dst.append(cd[ph]);
      phase.copy_src.clear();
      phase.copy_src.append(cs[ph]);
    }
  }

  result.num_buffer_slots = static_cast<std::uint32_t>(new_slot_elem.size());
  result.slot_elem.clear();
  result.slot_elem.append(new_slot_elem);
  result.free_slots.clear();
  for (std::uint32_t ph : dirty) result.phases[ph].flatten_indir();
  result.local_array_size =
      static_cast<std::uint64_t>(n_elems) + result.num_buffer_slots;
  return result;
}

InspectorResult update_light_inspector(
    const RotationSchedule& sched, std::uint32_t proc,
    const IterationRefs& iters, const InspectorResult& previous,
    std::span<const std::uint32_t> changed_local,
    const LightInspectorOptions& opt) {
  check_refs(sched, iters);
  ER_EXPECTS(previous.assigned_phase.size() == iters.num_iterations());
  std::vector<std::uint32_t> cl(changed_local.begin(), changed_local.end());
  std::sort(cl.begin(), cl.end());
  cl.erase(std::unique(cl.begin(), cl.end()), cl.end());
  std::vector<ChangedIteration> changes;
  changes.reserve(cl.size());
  for (std::uint32_t c : cl) {
    ER_EXPECTS_MSG(c < iters.num_iterations(),
                   "changed iteration index out of range");
    ChangedIteration ch;
    ch.local = c;
    ch.global = iters.global_iter[c];
    ch.refs.reserve(iters.num_refs());
    for (std::size_t r = 0; r < iters.num_refs(); ++r)
      ch.refs.push_back(iters.refs[r][c]);
    changes.push_back(std::move(ch));
  }
  return update_light_inspector(sched, proc, previous, changes, opt);
}

}  // namespace earthred::inspector
