#include "inspector/light_inspector.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/check.hpp"

namespace earthred::inspector {

void PhaseSchedule::flatten_indir() {
  indir_flat.clear();
  indir_flat.reserve(indir.size() * iter_global.size());
  for (const std::vector<std::uint32_t>& row : indir)
    indir_flat.insert(indir_flat.end(), row.begin(), row.end());
}

std::vector<std::uint64_t> InspectorResult::phase_sizes() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(phases.size());
  for (const PhaseSchedule& p : phases) sizes.push_back(p.iter_global.size());
  return sizes;
}

std::uint64_t InspectorResult::total_deferred() const {
  std::uint64_t n = 0;
  for (const PhaseSchedule& p : phases) n += p.copy_dst.size();
  return n;
}

namespace {

void check_refs(const RotationSchedule& sched, const IterationRefs& iters) {
  ER_EXPECTS_MSG(!iters.refs.empty(), "at least one indirection reference");
  for (const auto& row : iters.refs) {
    ER_EXPECTS_MSG(row.size() == iters.num_iterations(),
                   "ragged indirection reference rows");
    for (std::uint32_t e : row)
      ER_EXPECTS_MSG(e < sched.num_elements(),
                     "indirection value out of range");
  }
}

/// Shared slot allocator for the full and incremental paths.
class SlotAllocator {
 public:
  SlotAllocator(InspectorResult& result, const RotationSchedule& sched,
                std::uint32_t proc, bool dedup)
      : result_(result), sched_(sched), proc_(proc), dedup_(dedup) {}

  /// Returns the redirected index (num_elements + slot) for a reference to
  /// `elem` that is owned only in a later phase, adding the second-loop
  /// copy entry in `elem`'s owning phase when a new slot is created.
  std::uint32_t defer(std::uint32_t elem) {
    if (dedup_) {
      const auto it = dedup_map_.find(elem);
      if (it != dedup_map_.end())
        return sched_.num_elements() + it->second;
    }
    std::uint32_t slot;
    if (!result_.free_slots.empty()) {
      slot = result_.free_slots.back();
      result_.free_slots.pop_back();
      result_.slot_elem[slot] = elem;
    } else {
      slot = result_.num_buffer_slots++;
      result_.slot_elem.push_back(elem);
    }
    if (dedup_) dedup_map_.emplace(elem, slot);
    const std::uint32_t fold_phase =
        sched_.owning_phase(proc_, sched_.portion_of(elem));
    result_.phases[fold_phase].copy_dst.push_back(elem);
    result_.phases[fold_phase].copy_src.push_back(sched_.num_elements() +
                                                  slot);
    return sched_.num_elements() + slot;
  }

 private:
  InspectorResult& result_;
  const RotationSchedule& sched_;
  std::uint32_t proc_;
  bool dedup_;
  std::unordered_map<std::uint32_t, std::uint32_t> dedup_map_;
};

/// Assigns one iteration: computes its phase, appends it with redirected
/// references.
void place_iteration(const RotationSchedule& sched, std::uint32_t proc,
                     const IterationRefs& iters, std::uint32_t local,
                     InspectorResult& result, SlotAllocator& slots) {
  const std::size_t nrefs = iters.num_refs();
  // Step 1 (per iteration): earliest owning phase over all references.
  std::uint32_t assigned = sched.phases_per_sweep();
  for (std::size_t r = 0; r < nrefs; ++r) {
    const std::uint32_t ph =
        sched.owning_phase(proc, sched.portion_of(iters.refs[r][local]));
    assigned = std::min(assigned, ph);
  }
  // Step 2: append to the phase with redirected references.
  PhaseSchedule& phase = result.phases[assigned];
  phase.iter_global.push_back(iters.global_iter[local]);
  phase.iter_local.push_back(local);
  for (std::size_t r = 0; r < nrefs; ++r) {
    const std::uint32_t elem = iters.refs[r][local];
    const std::uint32_t ph = sched.owning_phase(proc, sched.portion_of(elem));
    phase.indir[r].push_back(ph == assigned ? elem : slots.defer(elem));
  }
  result.assigned_phase[local] = assigned;
}

}  // namespace

InspectorResult run_light_inspector(const RotationSchedule& sched,
                                    std::uint32_t proc,
                                    const IterationRefs& iters,
                                    const LightInspectorOptions& opt) {
  ER_EXPECTS(proc < sched.num_procs());
  check_refs(sched, iters);

  InspectorResult result;
  result.phases.resize(sched.phases_per_sweep());
  for (PhaseSchedule& p : result.phases) p.indir.resize(iters.num_refs());
  result.assigned_phase.assign(iters.num_iterations(), 0);

  SlotAllocator slots(result, sched, proc, opt.dedup_buffers);
  for (std::uint32_t i = 0; i < iters.num_iterations(); ++i)
    place_iteration(sched, proc, iters, i, result, slots);

  for (PhaseSchedule& p : result.phases) p.flatten_indir();
  result.local_array_size =
      static_cast<std::uint64_t>(sched.num_elements()) +
      result.num_buffer_slots;
  return result;
}

InspectorResult update_light_inspector(
    const RotationSchedule& sched, std::uint32_t proc,
    const IterationRefs& iters, const InspectorResult& previous,
    std::span<const std::uint32_t> changed_local,
    const LightInspectorOptions& opt) {
  ER_EXPECTS(proc < sched.num_procs());
  ER_EXPECTS_MSG(!opt.dedup_buffers,
                 "incremental update supports the paper's one-slot-per-"
                 "reference scheme only");
  check_refs(sched, iters);
  ER_EXPECTS(previous.assigned_phase.size() == iters.num_iterations());

  InspectorResult result = previous;

  std::unordered_set<std::uint32_t> changed(changed_local.begin(),
                                            changed_local.end());
  for (std::uint32_t c : changed_local)
    ER_EXPECTS_MSG(c < iters.num_iterations(),
                   "changed iteration index out of range");

  // Phases that contain changed iterations (removal targets).
  std::unordered_set<std::uint32_t> affected;
  for (std::uint32_t c : changed_local)
    affected.insert(result.assigned_phase[c]);

  // Remove changed iterations (and the copy entries their freed slots
  // feed) from their old phases.
  std::unordered_set<std::uint32_t> freed_redirects;  // num_elements + slot
  for (std::uint32_t ph : affected) {
    PhaseSchedule& phase = result.phases[ph];
    std::size_t w = 0;
    for (std::size_t j = 0; j < phase.iter_local.size(); ++j) {
      if (changed.count(phase.iter_local[j])) {
        for (auto& row : phase.indir) {
          if (row[j] >= sched.num_elements()) {
            const std::uint32_t slot =
                row[j] - sched.num_elements();
            result.free_slots.push_back(slot);
            freed_redirects.insert(row[j]);
          }
        }
        continue;  // drop this entry
      }
      phase.iter_global[w] = phase.iter_global[j];
      phase.iter_local[w] = phase.iter_local[j];
      for (auto& row : phase.indir) row[w] = row[j];
      ++w;
    }
    phase.iter_global.resize(w);
    phase.iter_local.resize(w);
    for (auto& row : phase.indir) row.resize(w);
  }

  // Drop the second-loop entries that folded the freed slots. A freed
  // slot's fold entry lives in the owning phase of its old element, which
  // may be outside `affected`; locate it via slot_elem.
  if (!freed_redirects.empty()) {
    std::unordered_set<std::uint32_t> fold_phases;
    for (std::uint32_t redirect : freed_redirects) {
      const std::uint32_t slot = redirect - sched.num_elements();
      fold_phases.insert(
          sched.owning_phase(proc, sched.portion_of(result.slot_elem[slot])));
    }
    for (std::uint32_t ph : fold_phases) {
      PhaseSchedule& phase = result.phases[ph];
      std::size_t w = 0;
      for (std::size_t j = 0; j < phase.copy_src.size(); ++j) {
        if (freed_redirects.count(phase.copy_src[j])) continue;
        phase.copy_dst[w] = phase.copy_dst[j];
        phase.copy_src[w] = phase.copy_src[j];
        ++w;
      }
      phase.copy_dst.resize(w);
      phase.copy_src.resize(w);
    }
  }

  // Re-insert the changed iterations with their new references.
  SlotAllocator slots(result, sched, proc, /*dedup=*/false);
  for (std::uint32_t c : changed_local)
    place_iteration(sched, proc, iters, c, result, slots);

  // Re-derive the flattened executor layout. Every phase is refreshed
  // (not just the touched ones): the host-side cost is one linear copy,
  // while the simulated incremental-inspector cycle charge stays
  // proportional to the changed iterations as before.
  for (PhaseSchedule& p : result.phases) p.flatten_indir();
  result.local_array_size =
      static_cast<std::uint64_t>(sched.num_elements()) +
      result.num_buffer_slots;
  return result;
}

}  // namespace earthred::inspector
