// Iteration distributions (Sec. 5.4.1): how the edges/interactions of an
// irregular reduction loop — and the iteration-aligned arrays like IA and
// Y in Figure 1 — are divided among processors. The paper evaluates block
// ("b") and cyclic ("c") distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace earthred::inspector {

enum class Distribution { Block, Cyclic, BlockCyclic };

/// Parses "block"/"b", "cyclic"/"c", or "block-cyclic"/"bc"; throws
/// check_error otherwise.
Distribution parse_distribution(const std::string& name);
const char* to_string(Distribution d);

/// Global iteration ids owned by each processor, in local order.
/// Block: processor p owns a contiguous chunk (sizes differing by at most
/// one). Cyclic: processor p owns p, p+P, p+2P, ... BlockCyclic: HPF-style
/// round-robin chunks of `bc_block` iterations (Block and Cyclic are its
/// two extremes). `bc_block` is ignored for the other kinds.
std::vector<std::vector<std::uint32_t>> distribute_iterations(
    std::uint64_t num_iterations, std::uint32_t num_procs, Distribution d,
    std::uint32_t bc_block = 16);

}  // namespace earthred::inspector
