// Iteration distributions (Sec. 5.4.1): how the edges/interactions of an
// irregular reduction loop — and the iteration-aligned arrays like IA and
// Y in Figure 1 — are divided among processors. The paper evaluates block
// ("b") and cyclic ("c") distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace earthred::inspector {

enum class Distribution { Block, Cyclic, BlockCyclic };

/// Parses "block"/"b", "cyclic"/"c", or "block-cyclic"/"bc"; throws
/// check_error otherwise.
Distribution parse_distribution(const std::string& name);
const char* to_string(Distribution d);

/// Global iteration ids owned by each processor, in local order.
/// Block: processor p owns a contiguous chunk (sizes differing by at most
/// one). Cyclic: processor p owns p, p+P, p+2P, ... BlockCyclic: HPF-style
/// round-robin chunks of `bc_block` iterations (Block and Cyclic are its
/// two extremes). `bc_block` is ignored for the other kinds.
std::vector<std::vector<std::uint32_t>> distribute_iterations(
    std::uint64_t num_iterations, std::uint32_t num_procs, Distribution d,
    std::uint32_t bc_block = 16);

/// Placement of one global iteration under a distribution.
struct IterationHome {
  std::uint32_t proc = 0;   ///< owning processor
  std::uint32_t local = 0;  ///< index within that processor's local order
};

/// O(1) inverse of distribute_iterations: the processor owning global
/// iteration `g` and g's position in that processor's local order, such
/// that distribute_iterations(...)[home.proc][home.local] == g. Lets the
/// incremental re-planner map a handful of mutated iterations to their
/// processors without materializing the full O(num_iterations)
/// distribution.
IterationHome locate_iteration(std::uint64_t num_iterations,
                               std::uint32_t num_procs, Distribution d,
                               std::uint32_t bc_block, std::uint64_t g);

}  // namespace earthred::inspector
