// Rotation schedule for the reduction array (Sec. 2.2 of the paper).
//
// The reduction array of `num_elements` elements is split into
// k * num_procs block portions. During phase `ph` (0 <= ph < k*P),
// processor `p` owns portion
//
//     owned_portion(p, ph) = (k*p + ph) mod (k*P)              [paper]
//
// and therefore owns any given portion during exactly one phase per sweep:
//
//     owning_phase(p, pid) = (pid - k*p) mod (k*P).
//
// After finishing a phase, a processor forwards the portion it owned to
// next_owner(p) = (p + P - 1) mod P, which owns it k phases later — for
// k > 1 the transfer is in flight for k-1 phase-widths, which is the
// communication/computation overlap the whole strategy relies on.
//
// Every portion is complete (has visited all P processors) during the last
// k phases of a sweep: last_owning_phase(pid) = k*P - k + (pid mod k).
#pragma once

#include <cstdint>

namespace earthred::inspector {

class RotationSchedule {
 public:
  /// `num_elements` — reduction array length; `num_procs` — P; `k` — the
  /// paper's overlap parameter (1, 2, 4, ...). Portion sizes differ by at
  /// most one (the first num_elements mod k*P portions are one longer).
  RotationSchedule(std::uint32_t num_elements, std::uint32_t num_procs,
                   std::uint32_t k);

  std::uint32_t num_elements() const noexcept { return n_; }
  std::uint32_t num_procs() const noexcept { return procs_; }
  std::uint32_t k() const noexcept { return k_; }
  /// Portions == phases per sweep == k * P.
  std::uint32_t num_portions() const noexcept { return kp_; }
  std::uint32_t phases_per_sweep() const noexcept { return kp_; }

  /// Block decomposition of elements into portions.
  std::uint32_t portion_of(std::uint32_t element) const;
  std::uint32_t portion_begin(std::uint32_t portion) const;
  std::uint32_t portion_end(std::uint32_t portion) const;
  std::uint32_t portion_size(std::uint32_t portion) const;
  /// Size of the largest portion (== size of portion 0).
  std::uint32_t max_portion_size() const;

  /// Portion owned by `proc` during `phase` ((k*p + ph) mod kP).
  std::uint32_t owned_portion(std::uint32_t proc, std::uint32_t phase) const;

  /// The unique phase in which `proc` owns `portion`.
  std::uint32_t owning_phase(std::uint32_t proc, std::uint32_t portion) const;

  /// Processor a finished portion is forwarded to ((p + P - 1) mod P).
  std::uint32_t next_owner(std::uint32_t proc) const;

  /// Processor whose finished portions arrive at `proc` — the inverse of
  /// next_owner ((p + 1) mod P). Each processor receives from exactly one
  /// neighbor, which is what lets the runtime maintain one reliable
  /// channel per ring edge.
  std::uint32_t ring_sender(std::uint32_t proc) const;

  /// Number of ring transfers that arrive for a (proc, phase) slot across
  /// `sweeps` sweeps: phases < k are pre-seeded with initial data on the
  /// first sweep and receive one fewer transfer.
  std::uint64_t phase_transfers(std::uint32_t phase,
                                std::uint64_t sweeps) const;

  /// Last phase of a sweep in which `portion` is owned by anyone — the
  /// phase at which its reduction is complete.
  std::uint32_t last_owning_phase(std::uint32_t portion) const;

  /// The processor owning `portion` at last_owning_phase(portion).
  std::uint32_t final_owner(std::uint32_t portion) const;

  /// Portions held by `proc` at sweep start, i.e. the ones it owns during
  /// phases 0..k-1 before any transfer could arrive. Returned as the list
  /// of portion ids for phases 0..k-1.
  /// (Initial data placement must follow this layout.)
  std::uint32_t initial_portion(std::uint32_t proc,
                                std::uint32_t phase_lt_k) const;

 private:
  std::uint32_t n_;
  std::uint32_t procs_;
  std::uint32_t k_;
  std::uint32_t kp_;
  std::uint32_t q_;  // n / kp
  std::uint32_t r_;  // n % kp
};

}  // namespace earthred::inspector
