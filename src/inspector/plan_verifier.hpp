// ExecutionPlan / rotation invariant verifier.
//
// The LightInspector's output is what the executors trust blindly: every
// phase's redirected indirection is scattered into local arrays with no
// bounds or ownership checks in the hot loop. A plan that violates the
// rotation invariants doesn't crash — it silently folds updates into
// elements a processor doesn't own, which the paper's strategy turns into
// a wrong (and timing-dependent) reduction. verify_plan() is an
// O(plan-size) single pass that proves the invariants hold:
//
//   1. every iteration appears in exactly one phase of exactly one
//      processor, and its global id is in range;
//   2. a direct reference (value < num_elements) addresses an element
//      whose portion is owned by that processor in that phase under the
//      rotation schedule (k>1 in-flight windows included — ownership is
//      owning_phase(p, portion) == phase, which already encodes the
//      k-phase transfer latency);
//   3. a redirected reference addresses a live buffer slot whose element
//      is owned only in a strictly later phase;
//   4. every live buffer slot is folded back exactly once, in the owning
//      phase of its element, onto that element;
//   5. the flattened executor layout (indir_flat), the phase-assignment
//      bookkeeping, and all slot metadata agree with the phase rows.
//
// Diagnostics reuse earthred::Diagnostic with plan coordinates in the
// message (there is no source line; line/column stay 0). Codes:
//   E-PLAN-SHAPE         container shapes disagree (ragged rows, wrong
//                        phase count, slot tables of the wrong length)
//   E-PLAN-FLAT          indir_flat disagrees with the indir rows
//   E-PLAN-PHASE-ASSIGN  assigned_phase bookkeeping contradicts the rows
//   E-PLAN-DUP-ITER      an iteration scheduled more than once
//   E-PLAN-LOST-ITER     an iteration scheduled nowhere
//   E-PLAN-PHASE-OWNER   direct reference to a portion not owned in-phase
//   E-PLAN-EARLY-REF     redirected reference to an element already owned
//                        (should have been direct)
//   E-PLAN-SLOT-RANGE    buffer-slot index past num_buffer_slots
//   E-PLAN-SLOT-FREED    reference or fold through a slot on the free list
//   E-PLAN-NO-FOLD       live slot never folded back
//   E-PLAN-DUP-FOLD      slot folded back more than once
//   E-PLAN-FOLD-PHASE    fold scheduled outside the element's owning phase
//   E-PLAN-FOLD-MISMATCH fold destination differs from the slot's element
//   E-PLAN-OOB           any index out of range (elements, iterations,
//                        local array)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "inspector/light_inspector.hpp"
#include "inspector/rotation.hpp"
#include "support/diagnostics.hpp"

namespace earthred::inspector {

/// Identity of the invariant set this verifier proves. Stamped into every
/// persisted plan-store file header and checked on load: a stored plan is
/// only admitted zero-copy if it was written under the *same* verifier
/// semantics that will re-check it in budget mode. Bump the low word
/// whenever an invariant is added, removed, or reinterpreted — old files
/// then fail the header check (E-STORE-VERIFIER) and fall back to a
/// rebuild instead of being trusted under rules they were never proven
/// against.
inline constexpr std::uint64_t kPlanVerifierFingerprint =
    0x45504c414e560001ull;  // "EPLANV" + revision 1

struct PlanVerifyOptions {
  /// Diagnostics recorded before the verifier stops describing individual
  /// violations (it keeps counting them). A corrupt plan can fail at every
  /// entry; sixteen examples identify the defect without a flood.
  std::size_t max_diagnostics = 16;
  /// true (the default, and what admission / `earthred check` / the test
  /// corpus use): every invariant is proven per entry. false is the
  /// build-path budget mode that PlanOptions::verify runs under: the same
  /// shape, flattening, ownership, slot-range, free-list and fold
  /// invariants, but the hot sections run as branchless, vectorizable
  /// detection sweeps — iteration coverage and fold pairing are
  /// established through power sums compared against closed forms, and
  /// any mismatch (or any directly reported violation) reruns the whole
  /// pass exhaustively for authoritative, localized diagnostics. Two
  /// per-entry checks with no bearing on what the executor computes are
  /// detected only by the exhaustive pass: the assigned_phase bookkeeping
  /// cross-check and the EARLY-REF ownership-window walk (a defect there
  /// still perturbs the fold pairing sums when it matters). This is what
  /// keeps verify-on cold builds inside the <5% budget.
  bool exhaustive = true;
};

struct PlanVerifyReport {
  /// Up to max_diagnostics violations, in traversal order.
  std::vector<Diagnostic> diagnostics;
  /// Total violations found, including ones past the recording cap.
  std::uint64_t violations = 0;
  // Work actually performed — lets tests assert the pass saw the plan.
  std::uint64_t checked_iterations = 0;
  std::uint64_t checked_refs = 0;
  std::uint64_t checked_folds = 0;

  bool ok() const noexcept { return violations == 0; }
  /// Multi-line "error[CODE]: message" rendering of the recorded
  /// diagnostics plus a suppressed-count trailer.
  std::string render() const;
  /// First diagnostic's one-line form — the service's reject reason.
  std::string first_error() const;
};

/// Verifies one InspectorResult per processor against `sched`.
/// `num_iterations` is the kernel's global iteration count (plan must
/// cover 0..num_iterations-1 exactly once); `num_refs` the indirection
/// reference count every phase must carry. Pure read-only pass; never
/// throws on plan defects (they go in the report).
PlanVerifyReport verify_plan(const RotationSchedule& sched,
                             std::span<const InspectorResult> insp,
                             std::uint64_t num_iterations,
                             std::uint32_t num_refs,
                             const PlanVerifyOptions& opt = {});

}  // namespace earthred::inspector
