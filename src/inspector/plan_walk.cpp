#include "inspector/plan_walk.hpp"

namespace earthred::inspector {

namespace {

/// Heap bytes held by one vector (capacity, not size — the allocation is
/// what the cache budget pays for). Container headers are accounted by the
/// enclosing struct's sizeof, never here.
template <typename T>
std::uint64_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// U32Buf reports its own footprint: owned capacity, or the viewed extent
/// for buffers adopted from a plan-store mapping — either way the bytes a
/// resident plan pins, which is what the cache budget must see.
std::uint64_t vec_bytes(const U32Buf& v) { return v.footprint_bytes(); }

}  // namespace

PlanWalkStats walk_inspector(const InspectorResult& insp,
                             std::uint32_t num_elements) {
  PlanWalkStats stats;
  for_each_phase(insp, [&](std::uint32_t, const PhaseSchedule& phase) {
    stats.iterations += phase.iter_global.size();
    for (const U32Buf& row : phase.indir) {
      for (const std::uint32_t v : row) {
        if (v < num_elements)
          ++stats.direct_refs;
        else
          ++stats.deferred_refs;
      }
    }
    stats.fold_entries += phase.copy_dst.size();
  });
  stats.bytes = inspector_byte_size(insp);
  return stats;
}

std::uint64_t inspector_byte_size(const InspectorResult& insp) {
  std::uint64_t bytes = vec_bytes(insp.assigned_phase) +
                        vec_bytes(insp.slot_elem) +
                        vec_bytes(insp.free_slots);
  bytes += insp.phases.capacity() * sizeof(PhaseSchedule);
  for_each_phase(insp, [&](std::uint32_t, const PhaseSchedule& ph) {
    bytes += vec_bytes(ph.iter_global) + vec_bytes(ph.iter_local) +
             vec_bytes(ph.indir_flat) + vec_bytes(ph.copy_dst) +
             vec_bytes(ph.copy_src);
    bytes += ph.indir.capacity() * sizeof(U32Buf);
    for (const auto& row : ph.indir) bytes += vec_bytes(row);
  });
  return bytes;
}

}  // namespace earthred::inspector
