#include "inspector/plan_verifier.hpp"

#include <bit>
#include <cstring>

#include "inspector/plan_walk.hpp"

namespace earthred::inspector {

std::string PlanVerifyReport::render() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.label();
    out += ": ";
    out += d.message;
    out += '\n';
  }
  if (violations > diagnostics.size())
    out += "... and " + std::to_string(violations - diagnostics.size()) +
           " further violation(s) not shown\n";
  return out;
}

std::string PlanVerifyReport::first_error() const {
  if (diagnostics.empty()) return {};
  return diagnostics.front().label() + ": " + diagnostics.front().message;
}

// The budget pass is the plan store's warm-start critical path: every
// load re-proves the invariants before admission, so its sweeps run at
// memory speed or the 10x warm/cold win evaporates. The repo targets
// baseline x86-64 (no -march), which lacks even unsigned 32-bit SIMD
// compares; target_clones emits an AVX2 clone of each sweep next to the
// portable one and picks at load time via the glibc ifunc resolver —
// same source, same results, no extra build flags.
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    defined(__has_attribute)
#if __has_attribute(target_clones)
#define ER_SWEEP_CLONES __attribute__((target_clones("avx2", "default")))
#endif
#endif
#ifndef ER_SWEEP_CLONES
#define ER_SWEEP_CLONES
#endif

namespace {

/// Collects violations with the recording cap; counting never stops.
class Reporter {
 public:
  Reporter(PlanVerifyReport& report, const PlanVerifyOptions& opt)
      : report_(report), opt_(opt) {}

  void fail(const char* code, std::string msg) {
    ++report_.violations;
    if (report_.diagnostics.size() >= opt_.max_diagnostics) return;
    Diagnostic d;
    d.severity = Severity::Error;
    d.code = code;
    d.message = std::move(msg);
    report_.diagnostics.push_back(std::move(d));
  }

 private:
  PlanVerifyReport& report_;
  const PlanVerifyOptions& opt_;
};

/// "proc 1 phase 3" — the plan coordinate every message leads with.
std::string at(std::uint32_t proc, std::uint32_t phase) {
  return "proc " + std::to_string(proc) + " phase " + std::to_string(phase);
}

/// Power sums of every scheduled global iteration id, accumulated by the
/// budget pass in one vectorizable sweep per phase. count and s1 are
/// exact; s2 wraps mod 2^64 (the closed form it is compared against
/// wraps identically).
struct CoverageSums {
  std::uint64_t count = 0;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
};

// Odd multipliers mixing (slot, dst, phase) into the budget pass's
// fold-pairing sums (xxhash's 32-bit primes; any odd constants work —
// oddness makes a change to any single field shift the sum).
constexpr std::uint32_t kPairMulSlot = 0x9E3779B1u;
constexpr std::uint32_t kPairMulDst = 0x85EBCA77u;

/// Budget coverage sweep: power sums over the scheduled ids (no scatter).
ER_SWEEP_CLONES void budget_coverage_sums(const std::uint32_t* glob,
                                          std::size_t n, std::uint64_t& s1,
                                          std::uint64_t& s2) {
  std::uint64_t a = 0, b = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t g = glob[j];
    a += g;
    b += g * g;
  }
  s1 += a;
  s2 += b;
}

struct RowSweep {
  std::uint32_t nin = 0;     ///< entries inside the owned window
  std::uint32_t ndefer = 0;  ///< redirected entries (>= num_elements)
  std::uint32_t vmax = 0;    ///< row maximum
};

/// Budget per-row sweep: every entry is either inside the owned window or
/// redirected (counted arithmetically), and the row maximum bounds
/// redirected entries to live slot space.
ER_SWEEP_CLONES RowSweep budget_row_sweep(const std::uint32_t* row,
                                          std::size_t n,
                                          std::uint32_t owned_lo,
                                          std::uint32_t owned_size,
                                          std::uint32_t n_elems) {
  RowSweep out;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t v = row[j];
    out.nin += v - owned_lo < owned_size;
    out.ndefer += v >= n_elems;
    out.vmax = v > out.vmax ? v : out.vmax;
  }
  return out;
}

struct FoldSweep {
  std::uint64_t s1 = 0;     ///< sum of folded slot ids
  std::uint64_t s2 = 0;     ///< sum of their squares
  std::uint64_t w1 = 0;     ///< sum of mixed (slot, dst, phase) words
  std::uint64_t w2 = 0;     ///< sum of their squares
  std::uint32_t dmax = 0;   ///< largest fold destination
};

/// Budget fold sweep: pairing sums over one phase's second-loop lists.
ER_SWEEP_CLONES FoldSweep budget_fold_sums(const std::uint32_t* cd,
                                           const std::uint32_t* cs,
                                           std::size_t m,
                                           std::uint32_t n_elems,
                                           std::uint32_t ph) {
  FoldSweep out;
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint32_t slot = cs[j] - n_elems;  // wraps when not a slot
    const std::uint32_t dst = cd[j];
    out.s1 += slot;
    out.s2 += static_cast<std::uint64_t>(slot) * slot;
    const std::uint32_t w =
        slot * kPairMulSlot + dst * kPairMulDst + ph;  // wraps mod 2^32
    out.w1 += w;
    out.w2 += static_cast<std::uint64_t>(w) * w;
    out.dmax = dst > out.dmax ? dst : out.dmax;
  }
  return out;
}

/// Exact coverage walk: every global iteration id in [0, num_iterations)
/// scheduled exactly once across the whole plan, tracked in a bit-packed
/// seen map (L1-resident even for large meshes). Exhaustive mode only —
/// the budget pass proves the same property through power sums.
void verify_coverage_exact(std::span<const InspectorResult> insp,
                           std::uint64_t num_iterations, Reporter& rep) {
  const std::size_t words =
      static_cast<std::size_t>(num_iterations + 63) / 64;
  std::vector<std::uint64_t> seen(words, 0);
  for (std::uint32_t p = 0; p < insp.size(); ++p) {
    for (std::uint32_t ph = 0; ph < insp[p].phases.size(); ++ph) {
      const PhaseSchedule& phase = insp[p].phases[ph];
      for (const std::uint32_t g : phase.iter_global) {
        if (g >= num_iterations) {
          rep.fail("E-PLAN-OOB", at(p, ph) + ": global iteration " +
                                     std::to_string(g) + " >= " +
                                     std::to_string(num_iterations));
          continue;
        }
        std::uint64_t& word = seen[g >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (g & 63);
        if (word & bit)  // every occurrence beyond the first
          rep.fail("E-PLAN-DUP-ITER",
                   at(p, ph) + ": iteration " + std::to_string(g) +
                       " is scheduled more than once across the plan");
        word |= bit;
      }
    }
  }
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t missing = ~seen[w];
    if (w == words - 1 && (num_iterations & 63))
      missing &= (std::uint64_t{1} << (num_iterations & 63)) - 1;
    while (missing) {
      const int bit = std::countr_zero(missing);
      missing &= missing - 1;
      rep.fail("E-PLAN-LOST-ITER",
               "iteration " + std::to_string(w * 64 + bit) +
                   " is scheduled in no phase of any processor");
    }
  }
}

/// Verifies one processor's InspectorResult. In exhaustive mode every
/// invariant is proven (and reported) per entry. In budget mode the hot
/// sections only *detect*: branchless, vectorizable aggregate sweeps
/// raise `suspect` and the caller reruns the whole pass exhaustively —
/// broken plans are the cold path, so localization cost is irrelevant.
void verify_proc(const RotationSchedule& sched, const InspectorResult& insp,
                 std::uint32_t proc, std::uint32_t num_refs, bool exhaustive,
                 CoverageSums& cov, bool& suspect, PlanVerifyReport& report,
                 Reporter& rep) {
  const std::uint32_t n_elems = sched.num_elements();
  const std::uint32_t n_phases = sched.phases_per_sweep();

  if (insp.phases.size() != n_phases) {
    rep.fail("E-PLAN-SHAPE",
             "proc " + std::to_string(proc) + ": " +
                 std::to_string(insp.phases.size()) + " phases, schedule has " +
                 std::to_string(n_phases));
    return;  // nothing below can be trusted
  }
  if (insp.slot_elem.size() != insp.num_buffer_slots)
    rep.fail("E-PLAN-SHAPE",
             "proc " + std::to_string(proc) + ": slot_elem has " +
                 std::to_string(insp.slot_elem.size()) + " entries for " +
                 std::to_string(insp.num_buffer_slots) + " buffer slots");
  if (insp.local_array_size !=
      static_cast<std::uint64_t>(n_elems) + insp.num_buffer_slots)
    rep.fail("E-PLAN-SHAPE",
             "proc " + std::to_string(proc) + ": local_array_size " +
                 std::to_string(insp.local_array_size) + " != num_elements " +
                 std::to_string(n_elems) + " + " +
                 std::to_string(insp.num_buffer_slots) + " slots");

  // Free list: in-range, duplicate-free. freed[slot] marks slots no
  // reference or fold may touch; it is only materialized when something
  // could read it (cold builds have an empty free list).
  const bool any_freed = !insp.free_slots.empty();
  std::vector<char> freed;
  if (exhaustive || any_freed) freed.assign(insp.num_buffer_slots, 0);
  for (const std::uint32_t slot : insp.free_slots) {
    if (slot >= insp.num_buffer_slots) {
      rep.fail("E-PLAN-SLOT-RANGE",
               "proc " + std::to_string(proc) + ": free_slots entry " +
                   std::to_string(slot) + " >= num_buffer_slots " +
                   std::to_string(insp.num_buffer_slots));
      continue;
    }
    if (freed[slot])
      rep.fail("E-PLAN-SHAPE", "proc " + std::to_string(proc) +
                                   ": slot " + std::to_string(slot) +
                                   " appears twice on the free list");
    freed[slot] = 1;
  }

  if (exhaustive) {
    for (std::uint32_t slot = 0; slot < insp.slot_elem.size(); ++slot) {
      if (insp.slot_elem[slot] >= n_elems)
        rep.fail("E-PLAN-OOB",
                 "proc " + std::to_string(proc) + ": slot " +
                     std::to_string(slot) + " maps to element " +
                     std::to_string(insp.slot_elem[slot]) +
                     " >= num_elements " + std::to_string(n_elems));
    }
  } else {
    std::uint32_t oob = 0;
    for (const std::uint32_t elem : insp.slot_elem) oob += elem >= n_elems;
    suspect |= oob != 0;
  }

  // element -> phase in which this proc owns it, one pass over the
  // portions (no per-element division). The per-reference hot loop never
  // touches this table on its clean path — a direct reference in phase
  // ph is legal iff it falls inside the single portion this proc owns
  // there, a two-compare range test against loop constants — but slot
  // and fold checks resolve ownership through it.
  std::vector<std::uint32_t> owner_ph_of(n_elems);
  for (std::uint32_t portion = 0; portion < sched.num_portions(); ++portion) {
    const std::uint32_t owner_ph = sched.owning_phase(proc, portion);
    const std::uint32_t begin = sched.portion_begin(portion);
    const std::uint32_t size = sched.portion_size(portion);
    for (std::uint32_t e = begin; e < begin + size; ++e)
      owner_ph_of[e] = owner_ph;
  }
  // Exhaustive-only per-slot state. slot_owner_ph hoists the double
  // indirection (slot -> element -> owning phase) out of the deferred
  // and fold walks; n_phases flags a slot whose element is out of range
  // (already reported above).
  std::vector<std::uint32_t> slot_owner_ph, slot_refs, slot_folds;
  if (exhaustive) {
    slot_owner_ph.assign(insp.num_buffer_slots, n_phases);
    for (std::uint32_t slot = 0; slot < insp.slot_elem.size() &&
                                 slot < insp.num_buffer_slots;
         ++slot)
      if (insp.slot_elem[slot] < n_elems)
        slot_owner_ph[slot] = owner_ph_of[insp.slot_elem[slot]];
    slot_refs.assign(insp.num_buffer_slots, 0);
    slot_folds.assign(insp.num_buffer_slots, 0);
  }

  // Budget-mode fold pairing sums, accumulated across phases and
  // compared against the expected per-slot values after the walk.
  std::uint64_t fold_cnt = 0, fold_s1 = 0, fold_s2 = 0;
  std::uint64_t fold_w1 = 0, fold_w2 = 0;
  std::uint32_t fold_dmax = 0;

  for_each_phase(insp, [&](std::uint32_t ph, const PhaseSchedule& phase) {
    const std::size_t n = phase.iter_global.size();

    // --- shape of the phase rows -------------------------------------
    bool shape_ok = true;
    if (phase.iter_local.size() != n) {
      rep.fail("E-PLAN-SHAPE",
               at(proc, ph) + ": iter_local has " +
                   std::to_string(phase.iter_local.size()) +
                   " entries, iter_global has " + std::to_string(n));
      shape_ok = false;
    }
    if (phase.indir.size() != num_refs) {
      rep.fail("E-PLAN-SHAPE", at(proc, ph) + ": " +
                                   std::to_string(phase.indir.size()) +
                                   " indirection rows, kernel has " +
                                   std::to_string(num_refs));
      shape_ok = false;
    }
    for (std::size_t r = 0; shape_ok && r < phase.indir.size(); ++r) {
      if (phase.indir[r].size() != n) {
        rep.fail("E-PLAN-SHAPE",
                 at(proc, ph) + " ref " + std::to_string(r) + ": row has " +
                     std::to_string(phase.indir[r].size()) +
                     " entries for " + std::to_string(n) + " iterations");
        shape_ok = false;
      }
    }
    if (phase.copy_src.size() != phase.copy_dst.size()) {
      rep.fail("E-PLAN-SHAPE",
               at(proc, ph) + ": copy_src has " +
                   std::to_string(phase.copy_src.size()) +
                   " entries, copy_dst has " +
                   std::to_string(phase.copy_dst.size()));
      shape_ok = false;
    }
    if (phase.indir_flat.size() != num_refs * n) {
      rep.fail("E-PLAN-FLAT", at(proc, ph) + ": indir_flat has " +
                                  std::to_string(phase.indir_flat.size()) +
                                  " entries, rows hold " +
                                  std::to_string(num_refs * n));
      shape_ok = false;
    }
    if (!shape_ok) return;  // per-entry checks would index out of range

    // --- iteration bookkeeping ---------------------------------------
    report.checked_iterations += n;
    const std::uint32_t* glob = phase.iter_global.data();
    if (!exhaustive) {
      // Power sums over the scheduled ids; verify_plan compares them
      // against the closed forms.
      cov.count += n;
      budget_coverage_sums(glob, n, cov.s1, cov.s2);
    } else {
      // assigned_phase is incremental-update bookkeeping (the executor
      // never reads it), so the cross-check runs in exhaustive mode
      // only.
      const std::uint32_t* locs = phase.iter_local.data();
      const std::uint32_t n_local =
          static_cast<std::uint32_t>(insp.assigned_phase.size());
      const std::uint32_t* assigned = insp.assigned_phase.data();
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t l = locs[j];
        if (l >= n_local)
          rep.fail("E-PLAN-OOB",
                   at(proc, ph) + ": local iteration " + std::to_string(l) +
                       " >= assigned_phase size " + std::to_string(n_local));
        else if (assigned[l] != ph)
          rep.fail("E-PLAN-PHASE-ASSIGN",
                   at(proc, ph) + ": local iteration " + std::to_string(l) +
                       " is scheduled here but assigned_phase says " +
                       std::to_string(assigned[l]));
      }
    }

    // --- per-reference ownership + flattening ------------------------
    // Direct: the element's portion must be owned by this proc in this
    // phase — this is the whole rotation contract, including the
    // k-phase in-flight window for k > 1. Since exactly one portion is
    // owned per (proc, phase), the clean path is an unsigned range test
    // against two loop constants.
    const std::uint32_t owned = sched.owned_portion(proc, ph);
    const std::uint32_t owned_lo = sched.portion_begin(owned);
    const std::uint32_t owned_size = sched.portion_size(owned);
    const std::uint32_t slot_cap = insp.num_buffer_slots;
    report.checked_refs += static_cast<std::uint64_t>(num_refs) * n;
    for (std::size_t r = 0; r < num_refs; ++r) {
      const std::uint32_t* row = phase.indir[r].data();
      const std::uint32_t* flat = phase.indir_flat.data() + r * n;
      if (!exhaustive) {
        // Flattening first: zero-copy loaded plans rebuild the rows as
        // subspans of indir_flat, so pointer equality proves agreement
        // without reading a byte; distinct storage gets one memcmp
        // instead of a compare fused into the sweep below.
        suspect |= row != flat && n > 0 &&
                   std::memcmp(flat, row, n * sizeof(std::uint32_t)) != 0;
        // One branchless sweep per row, touching each entry once.
        const RowSweep sw =
            budget_row_sweep(row, n, owned_lo, owned_size, n_elems);
        const std::uint32_t ndefer = sw.ndefer;
        // Some direct reference outside the owned window:
        suspect |= sw.nin + ndefer != n;
        suspect |= static_cast<std::uint64_t>(sw.vmax) >=
                   static_cast<std::uint64_t>(n_elems) + slot_cap;
        if (ndefer && any_freed) {
          std::uint32_t nfreed = 0;
          for (std::size_t j = 0; j < n; ++j) {
            const std::uint32_t v = row[j];
            const std::uint32_t slot = v - n_elems;  // wraps when direct
            nfreed += (v >= n_elems) &
                      static_cast<std::uint32_t>(
                          freed[slot < slot_cap ? slot : 0]);
          }
          suspect |= nfreed != 0;
        }
        continue;
      }
      // Exhaustive: localize flattening mismatches (aliased rows agree
      // by construction; memcmp fast path otherwise), then prove
      // ownership per entry.
      if (row != flat && n > 0 &&
          std::memcmp(flat, row, n * sizeof(std::uint32_t)) != 0) {
        for (std::size_t j = 0; j < n; ++j)
          if (flat[j] != row[j])
            rep.fail("E-PLAN-FLAT",
                     at(proc, ph) + " ref " + std::to_string(r) + " iter " +
                         std::to_string(j) + ": indir_flat " +
                         std::to_string(flat[j]) + " != indir " +
                         std::to_string(row[j]));
      }
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t v = row[j];
        if (v < n_elems) {
          if (v - owned_lo < owned_size) continue;
          rep.fail("E-PLAN-PHASE-OWNER",
                   at(proc, ph) + " ref " + std::to_string(r) + " iter " +
                       std::to_string(j) + ": element " + std::to_string(v) +
                       " (portion " + std::to_string(sched.portion_of(v)) +
                       ") is owned in phase " +
                       std::to_string(owner_ph_of[v]) + ", not here");
          continue;
        }
        const std::uint64_t slot64 = static_cast<std::uint64_t>(v) - n_elems;
        if (slot64 >= slot_cap) {
          rep.fail("E-PLAN-SLOT-RANGE",
                   at(proc, ph) + " ref " + std::to_string(r) + " iter " +
                       std::to_string(j) + ": redirected index " +
                       std::to_string(v) + " addresses slot " +
                       std::to_string(slot64) + " of " +
                       std::to_string(slot_cap));
          continue;
        }
        const auto slot = static_cast<std::uint32_t>(slot64);
        if (freed[slot]) {
          rep.fail("E-PLAN-SLOT-FREED",
                   at(proc, ph) + " ref " + std::to_string(r) + " iter " +
                       std::to_string(j) + ": slot " + std::to_string(slot) +
                       " is on the free list");
          continue;
        }
        ++slot_refs[slot];
        if (slot_owner_ph[slot] <= ph)
          rep.fail("E-PLAN-EARLY-REF",
                   at(proc, ph) + " ref " + std::to_string(r) + " iter " +
                       std::to_string(j) + ": slot " + std::to_string(slot) +
                       " buffers element " +
                       std::to_string(insp.slot_elem[slot]) +
                       " already owned in phase " +
                       std::to_string(slot_owner_ph[slot]) +
                       "; the reference should be direct");
      }
    }

    // --- second loop (fold-backs) ------------------------------------
    report.checked_folds += phase.copy_dst.size();
    if (!exhaustive) {
      // Detection by pairing sums, no gathers or scatters: the multiset
      // of folded slots must equal the live-slot set (count + two power
      // sums over injective values), and each fold's (slot, dst, phase)
      // triple is mixed into two more sums compared against the values
      // the slot table implies. verify_plan documents the collision
      // caveat; any mismatch reruns the exhaustive pass.
      const std::size_t m = phase.copy_dst.size();
      const FoldSweep fs = budget_fold_sums(
          phase.copy_dst.data(), phase.copy_src.data(), m, n_elems, ph);
      fold_cnt += m;
      fold_s1 += fs.s1;
      fold_s2 += fs.s2;
      fold_w1 += fs.w1;
      fold_w2 += fs.w2;
      fold_dmax = fs.dmax > fold_dmax ? fs.dmax : fold_dmax;
      return;
    }
    for (std::size_t j = 0; j < phase.copy_dst.size(); ++j) {
      const std::uint32_t dst = phase.copy_dst[j];
      const std::uint32_t src = phase.copy_src[j];
      if (dst >= n_elems) {
        rep.fail("E-PLAN-OOB", at(proc, ph) + " fold " + std::to_string(j) +
                                   ": destination " + std::to_string(dst) +
                                   " >= num_elements " +
                                   std::to_string(n_elems));
        continue;
      }
      if (src < n_elems ||
          static_cast<std::uint64_t>(src) - n_elems >=
              insp.num_buffer_slots) {
        rep.fail("E-PLAN-SLOT-RANGE",
                 at(proc, ph) + " fold " + std::to_string(j) + ": source " +
                     std::to_string(src) + " is not a buffer slot");
        continue;
      }
      const std::uint32_t slot = src - n_elems;
      if (freed[slot]) {
        rep.fail("E-PLAN-SLOT-FREED",
                 at(proc, ph) + " fold " + std::to_string(j) + ": slot " +
                     std::to_string(slot) + " is on the free list");
        continue;
      }
      if (++slot_folds[slot] == 2)  // report each multiply-folded slot once
        rep.fail("E-PLAN-DUP-FOLD",
                 "proc " + std::to_string(proc) + ": slot " +
                     std::to_string(slot) + " is folded back more than once");
      if (insp.slot_elem[slot] != dst)
        rep.fail("E-PLAN-FOLD-MISMATCH",
                 at(proc, ph) + " fold " + std::to_string(j) + ": slot " +
                     std::to_string(slot) + " buffers element " +
                     std::to_string(insp.slot_elem[slot]) +
                     " but folds into element " + std::to_string(dst));
      // With dst == slot_elem[slot] this is exactly "dst owned here";
      // on a mismatch (already reported) it pins the fold to the phase
      // owning the slot's element.
      if (slot_owner_ph[slot] != ph)
        rep.fail("E-PLAN-FOLD-PHASE",
                 at(proc, ph) + " fold " + std::to_string(j) + ": element " +
                     std::to_string(dst) + " is owned in phase " +
                     std::to_string(slot_owner_ph[slot]) +
                     "; folding here races the rotation");
    }
  });

  if (!exhaustive) {
    // Expected side of the fold sums: every live slot folded exactly
    // once, into its own element, in that element's owning phase.
    std::uint64_t cnt = 0, s1 = 0, s2 = 0, w1 = 0, w2 = 0;
    for (std::uint32_t slot = 0;
         slot < insp.slot_elem.size() && slot < insp.num_buffer_slots;
         ++slot) {
      if (any_freed && freed[slot]) continue;
      const std::uint32_t raw = insp.slot_elem[slot];
      const std::uint32_t elem = raw < n_elems ? raw : 0;  // OOB: suspect set
      ++cnt;
      s1 += slot;
      s2 += static_cast<std::uint64_t>(slot) * slot;
      const std::uint32_t w =
          slot * kPairMulSlot + elem * kPairMulDst + owner_ph_of[elem];
      w1 += w;
      w2 += static_cast<std::uint64_t>(w) * w;
    }
    suspect |= fold_cnt != cnt || fold_s1 != s1 || fold_s2 != s2 ||
               fold_w1 != w1 || fold_w2 != w2;
    suspect |= fold_cnt > 0 && fold_dmax >= n_elems;
    return;
  }

  // Every slot the schedule writes through must fold back; DUP was
  // reported inline, absence is only visible after the full walk.
  for (std::uint32_t slot = 0; slot < insp.num_buffer_slots; ++slot) {
    if (freed[slot]) continue;
    if (slot_refs[slot] > 0 && slot_folds[slot] == 0)
      rep.fail("E-PLAN-NO-FOLD",
               "proc " + std::to_string(proc) + ": slot " +
                   std::to_string(slot) + " buffers element " +
                   std::to_string(insp.slot_elem[slot]) +
                   " but is never folded back");
  }
}

}  // namespace

PlanVerifyReport verify_plan(const RotationSchedule& sched,
                             std::span<const InspectorResult> insp,
                             std::uint64_t num_iterations,
                             std::uint32_t num_refs,
                             const PlanVerifyOptions& opt) {
  PlanVerifyReport report;
  Reporter rep(report, opt);

  if (insp.size() != sched.num_procs()) {
    rep.fail("E-PLAN-SHAPE",
             "plan has " + std::to_string(insp.size()) +
                 " inspector results, schedule has " +
                 std::to_string(sched.num_procs()) + " processors");
    return report;
  }

  CoverageSums cov;
  bool suspect = false;
  for (std::uint32_t p = 0; p < insp.size(); ++p)
    verify_proc(sched, insp[p], p, num_refs, opt.exhaustive, cov, suspect,
                report, rep);

  if (opt.exhaustive) {
    verify_coverage_exact(insp, num_iterations, rep);
    return report;
  }

  // Coverage via power sums: exactly-once scheduling of 0..N-1 forces
  // count == N, sum == N(N-1)/2 and sum of squares == (N-1)N(2N-1)/6
  // (both compared mod 2^64, which the accumulation wraps identically).
  // Any single dropped, duplicated or out-of-range id — and any pair of
  // such defects — shifts at least one of them; the same argument covers
  // the fold pairing sums above. Only contrived multi-id corruptions
  // could cancel, and the exhaustive pass at admission is airtight.
  const auto n128 = static_cast<unsigned __int128>(num_iterations);
  const auto s1_expect = static_cast<std::uint64_t>(n128 * (n128 - 1) / 2);
  const auto s2_expect = static_cast<std::uint64_t>(
      n128 * (n128 - 1) * (2 * n128 - 1) / 6);
  suspect |= cov.count != num_iterations || cov.s1 != s1_expect ||
             cov.s2 != s2_expect;

  if (!suspect && report.violations == 0) return report;

  // Something is off (or was reported outright): rerun exhaustively for
  // authoritative, localized diagnostics. Broken plans are the cold
  // path; the detector never flags a defect the exhaustive pass misses.
  PlanVerifyOptions full = opt;
  full.exhaustive = true;
  return verify_plan(sched, insp, num_iterations, num_refs, full);
}

}  // namespace earthred::inspector
