#include "inspector/classic_inspector.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/check.hpp"

namespace earthred::inspector {

std::uint64_t ClassicSchedule::active_channels() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : proc)
    for (const auto& v : p.send_ghost_slot)
      if (!v.empty()) ++n;
  return n;
}

std::uint64_t ClassicSchedule::total_values_sent() const noexcept {
  std::uint64_t s = 0;
  for (const auto& p : proc) s += p.total_sent();
  return s;
}

std::uint32_t classic_owner(std::uint32_t num_elements,
                            std::uint32_t num_procs, std::uint32_t element) {
  ER_EXPECTS(element < num_elements);
  const std::uint32_t q = num_elements / num_procs;
  const std::uint32_t r = num_elements % num_procs;
  const std::uint32_t split = r * (q + 1);
  if (element < split) return element / (q + 1);
  return r + (element - split) / q;
}

namespace {
std::uint32_t block_begin(std::uint32_t num_elements, std::uint32_t num_procs,
                          std::uint32_t p) {
  const std::uint32_t q = num_elements / num_procs;
  const std::uint32_t r = num_elements % num_procs;
  return p * q + std::min(p, r);
}
}  // namespace

ClassicSchedule build_classic_schedule(
    std::uint32_t num_elements, std::uint32_t num_procs,
    const std::vector<IterationRefs>& per_proc) {
  ER_EXPECTS(num_procs >= 1);
  ER_EXPECTS(per_proc.size() == num_procs);
  ER_EXPECTS(num_elements >= num_procs);

  ClassicSchedule sched;
  sched.proc.resize(num_procs);

  for (std::uint32_t p = 0; p < num_procs; ++p) {
    const IterationRefs& iters = per_proc[p];
    ClassicProcSchedule& out = sched.proc[p];
    out.owned_begin = block_begin(num_elements, num_procs, p);
    out.owned_end = block_begin(num_elements, num_procs, p + 1);
    out.iter_global = iters.global_iter;
    out.indir.resize(iters.num_refs());
    out.send_ghost_slot.resize(num_procs);
    out.send_dest_offset.resize(num_procs);

    // Ghost table: distinct off-processor element -> ghost slot.
    std::unordered_map<std::uint32_t, std::uint32_t> ghost_of;
    for (std::size_t r = 0; r < iters.num_refs(); ++r) {
      ER_EXPECTS_MSG(iters.refs[r].size() == iters.num_iterations(),
                     "ragged indirection reference rows");
      out.indir[r].reserve(iters.num_iterations());
      for (std::uint32_t e : iters.refs[r]) {
        ER_EXPECTS_MSG(e < num_elements, "indirection value out of range");
        if (e >= out.owned_begin && e < out.owned_end) {
          out.indir[r].push_back(e - out.owned_begin);
          continue;
        }
        auto [it, inserted] =
            ghost_of.try_emplace(e, out.num_ghosts);
        if (inserted) {
          const std::uint32_t owner =
              classic_owner(num_elements, num_procs, e);
          out.send_ghost_slot[owner].push_back(out.num_ghosts);
          out.send_dest_offset[owner].push_back(
              e - block_begin(num_elements, num_procs, owner));
          ++out.num_ghosts;
        }
        out.indir[r].push_back(out.owned_size() + it->second);
      }
    }
  }
  return sched;
}

}  // namespace earthred::inspector
