// U32Buf: the span-owning storage variant behind every large array of an
// InspectorResult / PhaseSchedule.
//
// A plan built in-process owns its arrays as ordinary heap vectors. A plan
// *loaded* from the persistent plan store instead adopts read-only views
// into the store file's memory mapping, so a warm start costs the header
// parse plus one checksum sweep instead of per-array allocation + copy
// (the zero-copy half of the plan-store design; see core/plan_io.hpp).
// The two states share one type so every consumer — executors, verifier,
// plan walk, serializer — reads through the same API without knowing
// which backing it has.
//
// Mutation is copy-on-write: any mutating call on an adopted buffer first
// materializes a private heap copy of the viewed data, then applies the
// edit. That is what lets the incremental re-planner patch an mmap-backed
// plan in place — only the phases it actually touches are copied; the
// rest stay views into the mapping (which the owning ExecutionPlan keeps
// alive through its `storage` handle).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <span>
#include <vector>

namespace earthred::inspector {

class U32Buf {
 public:
  using value_type = std::uint32_t;

  U32Buf() = default;
  U32Buf(std::initializer_list<std::uint32_t> init) : vec_(init) {}
  explicit U32Buf(std::vector<std::uint32_t> v) : vec_(std::move(v)) {}

  /// Becomes a read-only view of `view` (dropping any owned data). The
  /// viewed memory must outlive this buffer — for loaded plans the
  /// ExecutionPlan's `storage` member holds the mapping.
  void adopt(std::span<const std::uint32_t> view) {
    vec_.clear();
    vec_.shrink_to_fit();
    ext_ = view.data();
    ext_size_ = view.size();
  }

  /// True while backed by adopted (externally owned) memory.
  bool adopted() const noexcept { return ext_ != nullptr; }

  // ---- read API (never materializes) ----------------------------------
  const std::uint32_t* data() const noexcept {
    return ext_ ? ext_ : vec_.data();
  }
  std::size_t size() const noexcept { return ext_ ? ext_size_ : vec_.size(); }
  bool empty() const noexcept { return size() == 0; }
  const std::uint32_t& operator[](std::size_t i) const { return data()[i]; }
  const std::uint32_t& front() const { return data()[0]; }
  const std::uint32_t& back() const { return data()[size() - 1]; }
  const std::uint32_t* begin() const noexcept { return data(); }
  const std::uint32_t* end() const noexcept { return data() + size(); }
  operator std::span<const std::uint32_t>() const noexcept {
    return {data(), size()};
  }

  /// Heap bytes this buffer is responsible for. Adopted views report their
  /// viewed extent (the pages a resident plan pins in the page cache), so
  /// the PlanCache LRU budget sees loaded and built plans alike.
  std::uint64_t footprint_bytes() const noexcept {
    return (ext_ ? ext_size_ : vec_.capacity()) * sizeof(std::uint32_t);
  }

  // ---- mutating API (copy-on-write: detaches an adopted view) ---------
  std::uint32_t& operator[](std::size_t i) {
    detach();
    return vec_[i];
  }
  /// Detaches (if adopted) and exposes the contents for in-place element
  /// writes — one detach check for a whole loop instead of one per
  /// operator[] call. Invalidated by any size-changing call.
  std::span<std::uint32_t> mutate() {
    detach();
    return {vec_.data(), vec_.size()};
  }
  std::uint32_t& front() {
    detach();
    return vec_.front();
  }
  std::uint32_t& back() {
    detach();
    return vec_.back();
  }
  void push_back(std::uint32_t v) {
    detach();
    vec_.push_back(v);
  }
  void pop_back() {
    detach();
    vec_.pop_back();
  }
  void resize(std::size_t n) {
    detach();
    vec_.resize(n);
  }
  void reserve(std::size_t n) {
    detach();
    vec_.reserve(n);
  }
  void assign(std::size_t n, std::uint32_t v) {
    ext_ = nullptr;
    ext_size_ = 0;
    vec_.assign(n, v);
  }
  /// Drops the contents (also releases an adopted view without copying).
  void clear() noexcept {
    ext_ = nullptr;
    ext_size_ = 0;
    vec_.clear();
  }
  void append(std::span<const std::uint32_t> tail) {
    detach();
    vec_.insert(vec_.end(), tail.begin(), tail.end());
  }

  friend bool operator==(const U32Buf& a, const U32Buf& b) {
    return std::span<const std::uint32_t>(a).size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const U32Buf& a,
                         const std::vector<std::uint32_t>& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<std::uint32_t>& a,
                         const U32Buf& b) {
    return b == a;
  }

  friend std::ostream& operator<<(std::ostream& os, const U32Buf& b) {
    os << (b.adopted() ? "view[" : "owned[") << b.size() << "]{";
    const std::size_t shown = b.size() < 8 ? b.size() : 8;
    for (std::size_t i = 0; i < shown; ++i)
      os << (i ? "," : "") << b[i];
    if (shown < b.size()) os << ",...";
    return os << "}";
  }

 private:
  /// Materializes an adopted view into owned storage (no-op when owned).
  void detach() {
    if (!ext_) return;
    vec_.assign(ext_, ext_ + ext_size_);
    ext_ = nullptr;
    ext_size_ = 0;
  }

  std::vector<std::uint32_t> vec_;
  const std::uint32_t* ext_ = nullptr;
  std::size_t ext_size_ = 0;
};

}  // namespace earthred::inspector
