// Classic inspector/executor baseline (the CHAOS/PARTI scheme of Saltz et
// al. [21, 25] the paper compares against, Sec. 5.4.3 and 6).
//
// Owner-computes with block ownership of the reduction array: each
// processor owns a contiguous block of elements; contributions to
// non-owned elements accumulate in local *ghost* slots and are shipped to
// the owner once per sweep as aggregated (element, value) messages.
//
// Contrast with the LightInspector:
//   * building this schedule requires communication (processors must
//     exchange which ghost elements they will send — the translation
//     table), so an adaptive problem pays that cost at every rebuild;
//   * per-sweep communication volume depends on the contents of the
//     indirection arrays and on partition quality, whereas the rotation
//     scheme's volume is fixed.
#pragma once

#include <cstdint>
#include <vector>

#include "inspector/light_inspector.hpp"  // IterationRefs

namespace earthred::inspector {

/// Executor schedule for one processor under the classic scheme.
struct ClassicProcSchedule {
  /// Global element range owned by this processor (block partition).
  std::uint32_t owned_begin = 0;
  std::uint32_t owned_end = 0;

  /// Global ids of the local iterations (all run in one loop, no phases).
  std::vector<std::uint32_t> iter_global;
  /// indir[r][i]: redirected local index for reference r of iteration i.
  /// Values < owned_size() address the owned block (offset from
  /// owned_begin); values >= owned_size() address ghost slots.
  std::vector<std::vector<std::uint32_t>> indir;

  std::uint32_t num_ghosts = 0;

  /// Per destination processor: ghost slots to ship and the destination-
  /// local element offsets they fold into (parallel vectors, same order on
  /// both sides of the channel).
  std::vector<std::vector<std::uint32_t>> send_ghost_slot;  // [dest][j]
  std::vector<std::vector<std::uint32_t>> send_dest_offset; // [dest][j]

  std::uint32_t owned_size() const noexcept { return owned_end - owned_begin; }
  /// Local accumulation array length: owned block + ghosts.
  std::uint64_t local_array_size() const noexcept {
    return static_cast<std::uint64_t>(owned_size()) + num_ghosts;
  }
  /// Total values shipped per sweep.
  std::uint64_t total_sent() const noexcept {
    std::uint64_t s = 0;
    for (const auto& v : send_ghost_slot) s += v.size();
    return s;
  }
};

/// Whole-machine classic schedule.
struct ClassicSchedule {
  std::vector<ClassicProcSchedule> proc;

  /// Number of point-to-point channels with nonzero traffic.
  std::uint64_t active_channels() const noexcept;
  /// Total values shipped per sweep over all processors.
  std::uint64_t total_values_sent() const noexcept;
};

/// Builds the classic owner-computes schedule. `per_proc[p]` carries
/// processor p's iterations and references (same input type as the
/// LightInspector, so benches can feed both from one distribution).
ClassicSchedule build_classic_schedule(
    std::uint32_t num_elements, std::uint32_t num_procs,
    const std::vector<IterationRefs>& per_proc);

/// Block owner of a global element.
std::uint32_t classic_owner(std::uint32_t num_elements,
                            std::uint32_t num_procs, std::uint32_t element);

}  // namespace earthred::inspector
