#include "inspector/rotation.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace earthred::inspector {

RotationSchedule::RotationSchedule(std::uint32_t num_elements,
                                   std::uint32_t num_procs, std::uint32_t k)
    : n_(num_elements), procs_(num_procs), k_(k), kp_(num_procs * k) {
  ER_EXPECTS(num_procs >= 1);
  ER_EXPECTS(k >= 1);
  ER_EXPECTS_MSG(num_elements >= kp_,
                 "reduction array must have at least one element per portion");
  q_ = n_ / kp_;
  r_ = n_ % kp_;
}

std::uint32_t RotationSchedule::portion_of(std::uint32_t element) const {
  ER_EXPECTS(element < n_);
  // First r_ portions have q_+1 elements; the rest have q_.
  const std::uint32_t split = r_ * (q_ + 1);
  if (element < split) return element / (q_ + 1);
  return r_ + (element - split) / q_;
}

std::uint32_t RotationSchedule::portion_begin(std::uint32_t portion) const {
  ER_EXPECTS(portion < kp_);
  return portion * q_ + std::min(portion, r_);
}

std::uint32_t RotationSchedule::portion_end(std::uint32_t portion) const {
  return portion_begin(portion) + portion_size(portion);
}

std::uint32_t RotationSchedule::portion_size(std::uint32_t portion) const {
  ER_EXPECTS(portion < kp_);
  return q_ + (portion < r_ ? 1 : 0);
}

std::uint32_t RotationSchedule::max_portion_size() const {
  return q_ + (r_ > 0 ? 1 : 0);
}

std::uint32_t RotationSchedule::owned_portion(std::uint32_t proc,
                                              std::uint32_t phase) const {
  ER_EXPECTS(proc < procs_);
  ER_EXPECTS(phase < kp_);
  return (k_ * proc + phase) % kp_;
}

std::uint32_t RotationSchedule::owning_phase(std::uint32_t proc,
                                             std::uint32_t portion) const {
  ER_EXPECTS(proc < procs_);
  ER_EXPECTS(portion < kp_);
  return (portion + kp_ - (k_ * proc) % kp_) % kp_;
}

std::uint32_t RotationSchedule::next_owner(std::uint32_t proc) const {
  ER_EXPECTS(proc < procs_);
  return (proc + procs_ - 1) % procs_;
}

std::uint32_t RotationSchedule::ring_sender(std::uint32_t proc) const {
  ER_EXPECTS(proc < procs_);
  return (proc + 1) % procs_;
}

std::uint64_t RotationSchedule::phase_transfers(std::uint32_t phase,
                                                std::uint64_t sweeps) const {
  ER_EXPECTS(phase < kp_);
  return phase < k_ ? (sweeps == 0 ? 0 : sweeps - 1) : sweeps;
}

std::uint32_t RotationSchedule::last_owning_phase(
    std::uint32_t portion) const {
  ER_EXPECTS(portion < kp_);
  return kp_ - k_ + (portion % k_);
}

std::uint32_t RotationSchedule::final_owner(std::uint32_t portion) const {
  const std::uint32_t ph = last_owning_phase(portion);
  // Find p with (k*p + ph) mod kP == portion, i.e. k*p == portion - ph
  // (mod kP); portion - ph is a multiple of k by construction.
  const std::uint32_t diff = (portion + kp_ - ph % kp_) % kp_;
  ER_ENSURES(diff % k_ == 0);
  return diff / k_;
}

std::uint32_t RotationSchedule::initial_portion(
    std::uint32_t proc, std::uint32_t phase_lt_k) const {
  ER_EXPECTS(phase_lt_k < k_);
  return owned_portion(proc, phase_lt_k);
}

}  // namespace earthred::inspector
