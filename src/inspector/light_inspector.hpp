// The LightInspector (Sec. 3 of the paper).
//
// Runtime preprocessing that runs *independently on each processor* — no
// inter-processor communication, which is what makes it "light" compared
// to the CHAOS-style inspector/executor. Given the iterations assigned to
// one processor and the indirection references each iteration makes into
// the reduction array, it produces:
//
//   1. the partition of iterations into the k*P phases (each iteration is
//      assigned to the earliest phase in which one of its referenced
//      portions is owned by this processor);
//   2. redirected indirection arrays per phase: a reference owned in the
//      iteration's phase keeps its element index; a reference owned only
//      in a later phase is redirected to a *remote buffer* slot appended
//      past the reduction array (the paper's Figure 3 "location 8, 9, ...");
//   3. the per-phase second loop (copy1_out/copy2_out in Figure 3) that
//      folds each buffer slot into its element during the phase in which
//      the element is owned.
//
// Buffer allocation supports two policies: one slot per deferred reference
// (the paper's scheme, illustrated in Figure 3), or deduplicated — one
// slot per distinct deferred element, shared by all iterations of this
// processor that update it (an ablation; see bench_ablation_dedup).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "inspector/rotation.hpp"
#include "inspector/u32buf.hpp"

namespace earthred::inspector {

/// The indirection references of one processor's iterations:
/// refs[r][i] = element updated by local iteration i through reference
/// slot r (e.g. r=0 is IA(i,1), r=1 is IA(i,2)). All rows must have equal
/// length. One row (a single distinct indirection reference) is the easy
/// case the paper notes needs no buffers; two or more rows exercise the
/// full machinery.
struct IterationRefs {
  /// Global ids of the local iterations, in local order (used by engines
  /// to gather iteration-aligned data such as the Y array of Figure 1).
  std::vector<std::uint32_t> global_iter;
  /// refs[r][i]: element index referenced by local iteration i, slot r.
  std::vector<std::vector<std::uint32_t>> refs;

  std::size_t num_iterations() const noexcept { return global_iter.size(); }
  std::size_t num_refs() const noexcept { return refs.size(); }
};

struct LightInspectorOptions {
  /// Share one buffer slot among all deferred references to the same
  /// element (false reproduces the paper's one-slot-per-reference scheme).
  bool dedup_buffers = false;
};

/// One phase of the executor schedule.
///
/// Array fields use U32Buf (span-owning storage): built plans own heap
/// vectors; plans loaded from the persistent plan store adopt zero-copy
/// views into the store file's memory mapping. Mutation is copy-on-write.
struct PhaseSchedule {
  /// Global iteration ids assigned to this phase, in execution order.
  U32Buf iter_global;
  /// Local iteration indices (into IterationRefs rows) parallel to
  /// iter_global; consumed by the incremental update.
  U32Buf iter_local;
  /// indir[r][j]: redirected index for reference slot r of the j-th
  /// iteration of this phase. Values < num_elements address the reduction
  /// array directly (always within the portion owned this phase for the
  /// reference that determined the assignment); values >= num_elements
  /// address buffer slots.
  std::vector<U32Buf> indir;
  /// Flattened structure-of-arrays copy of `indir`: one contiguous block,
  /// ref-major (`indir_flat[r * n + j] == indir[r][j]` where n is the
  /// phase's iteration count). Built by the inspector once the phase
  /// contents are final; batch executors (core::PhaseView) stream this
  /// block instead of chasing `num_refs` separate heap vectors.
  U32Buf indir_flat;
  /// Second loop: element copy_dst[j] (owned this phase) accumulates
  /// buffer slot copy_src[j] (>= num_elements).
  U32Buf copy_dst;
  U32Buf copy_src;

  /// Rebuilds `indir_flat` from the `indir` rows.
  void flatten_indir();
};

/// Full LightInspector output for one processor.
struct InspectorResult {
  std::vector<PhaseSchedule> phases;  ///< one per phase (k*P entries)
  std::uint32_t num_buffer_slots = 0;
  /// num_elements + num_buffer_slots: required local array length.
  std::uint64_t local_array_size = 0;

  // --- bookkeeping consumed by update_light_inspector ------------------
  /// Phase each local iteration was assigned to.
  U32Buf assigned_phase;
  /// Element a buffer slot folds into (slot -> element).
  U32Buf slot_elem;
  /// Slots freed by incremental updates, available for reuse.
  U32Buf free_slots;

  /// Iterations per phase (load-balance analysis, Sec. 5.4.3).
  std::vector<std::uint64_t> phase_sizes() const;
  /// Total deferred references (== total second-loop entries).
  std::uint64_t total_deferred() const;
};

/// Runs the LightInspector for processor `proc`.
///
/// Complexity: O(num_iterations * num_refs); no communication.
/// Throws precondition_error on ragged refs or out-of-range elements.
InspectorResult run_light_inspector(const RotationSchedule& sched,
                                    std::uint32_t proc,
                                    const IterationRefs& iters,
                                    const LightInspectorOptions& opt = {});

/// One mutated iteration, in the sparse-update form: the incremental
/// inspector only ever needs the *new* references of the iterations that
/// changed, so callers (core::patch_execution_plan) gather exactly these
/// columns instead of re-gathering every reference on the processor.
struct ChangedIteration {
  std::uint32_t local = 0;   ///< local iteration index on this processor
  std::uint32_t global = 0;  ///< global iteration id
  /// New reference values, one per reference slot (refs[r] replaces
  /// IterationRefs::refs[r][local]).
  std::vector<std::uint32_t> refs;
};

/// Incremental variant (the paper's planned future work, Sec. 7): given a
/// previous result and the iterations whose references changed, updates
/// only the affected state. Produces a result *bit-identical* to a full
/// re-run — iteration order, slot numbering and fold order are normalized
/// to the fresh run's canonical form (verified by property tests in
/// tests/test_plan_patch.cpp); the point is cost — the work is
/// proportional to the touched iterations plus light linear sweeps (a
/// redirect count and a redirect rewrite over the resident rows) instead
/// of a full rebuild with its reference gather and per-reference phase
/// arithmetic.
///
/// `previous` must be canonical — a fresh run or the output of a prior
/// update (in particular free_slots must be empty); `changes` must be
/// sorted by `local` with no duplicates, and every entry must carry one
/// new reference value per reference slot of `previous`.
InspectorResult update_light_inspector(const RotationSchedule& sched,
                                       std::uint32_t proc,
                                       const InspectorResult& previous,
                                       std::span<const ChangedIteration> changes,
                                       const LightInspectorOptions& opt = {});

/// Convenience overload taking the full (new) reference table: extracts
/// the changed columns and forwards to the sparse form above.
/// `changed_local` lists local iteration indices (into iters.global_iter)
/// whose references differ from the run that produced `previous`; `iters`
/// must contain the *new* references for all iterations.
InspectorResult update_light_inspector(const RotationSchedule& sched,
                                       std::uint32_t proc,
                                       const IterationRefs& iters,
                                       const InspectorResult& previous,
                                       std::span<const std::uint32_t> changed_local,
                                       const LightInspectorOptions& opt = {});

}  // namespace earthred::inspector
