// The LightInspector (Sec. 3 of the paper).
//
// Runtime preprocessing that runs *independently on each processor* — no
// inter-processor communication, which is what makes it "light" compared
// to the CHAOS-style inspector/executor. Given the iterations assigned to
// one processor and the indirection references each iteration makes into
// the reduction array, it produces:
//
//   1. the partition of iterations into the k*P phases (each iteration is
//      assigned to the earliest phase in which one of its referenced
//      portions is owned by this processor);
//   2. redirected indirection arrays per phase: a reference owned in the
//      iteration's phase keeps its element index; a reference owned only
//      in a later phase is redirected to a *remote buffer* slot appended
//      past the reduction array (the paper's Figure 3 "location 8, 9, ...");
//   3. the per-phase second loop (copy1_out/copy2_out in Figure 3) that
//      folds each buffer slot into its element during the phase in which
//      the element is owned.
//
// Buffer allocation supports two policies: one slot per deferred reference
// (the paper's scheme, illustrated in Figure 3), or deduplicated — one
// slot per distinct deferred element, shared by all iterations of this
// processor that update it (an ablation; see bench_ablation_dedup).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "inspector/rotation.hpp"

namespace earthred::inspector {

/// The indirection references of one processor's iterations:
/// refs[r][i] = element updated by local iteration i through reference
/// slot r (e.g. r=0 is IA(i,1), r=1 is IA(i,2)). All rows must have equal
/// length. One row (a single distinct indirection reference) is the easy
/// case the paper notes needs no buffers; two or more rows exercise the
/// full machinery.
struct IterationRefs {
  /// Global ids of the local iterations, in local order (used by engines
  /// to gather iteration-aligned data such as the Y array of Figure 1).
  std::vector<std::uint32_t> global_iter;
  /// refs[r][i]: element index referenced by local iteration i, slot r.
  std::vector<std::vector<std::uint32_t>> refs;

  std::size_t num_iterations() const noexcept { return global_iter.size(); }
  std::size_t num_refs() const noexcept { return refs.size(); }
};

struct LightInspectorOptions {
  /// Share one buffer slot among all deferred references to the same
  /// element (false reproduces the paper's one-slot-per-reference scheme).
  bool dedup_buffers = false;
};

/// One phase of the executor schedule.
struct PhaseSchedule {
  /// Global iteration ids assigned to this phase, in execution order.
  std::vector<std::uint32_t> iter_global;
  /// Local iteration indices (into IterationRefs rows) parallel to
  /// iter_global; consumed by the incremental update.
  std::vector<std::uint32_t> iter_local;
  /// indir[r][j]: redirected index for reference slot r of the j-th
  /// iteration of this phase. Values < num_elements address the reduction
  /// array directly (always within the portion owned this phase for the
  /// reference that determined the assignment); values >= num_elements
  /// address buffer slots.
  std::vector<std::vector<std::uint32_t>> indir;
  /// Flattened structure-of-arrays copy of `indir`: one contiguous block,
  /// ref-major (`indir_flat[r * n + j] == indir[r][j]` where n is the
  /// phase's iteration count). Built by the inspector once the phase
  /// contents are final; batch executors (core::PhaseView) stream this
  /// block instead of chasing `num_refs` separate heap vectors.
  std::vector<std::uint32_t> indir_flat;
  /// Second loop: element copy_dst[j] (owned this phase) accumulates
  /// buffer slot copy_src[j] (>= num_elements).
  std::vector<std::uint32_t> copy_dst;
  std::vector<std::uint32_t> copy_src;

  /// Rebuilds `indir_flat` from the `indir` rows.
  void flatten_indir();
};

/// Full LightInspector output for one processor.
struct InspectorResult {
  std::vector<PhaseSchedule> phases;  ///< one per phase (k*P entries)
  std::uint32_t num_buffer_slots = 0;
  /// num_elements + num_buffer_slots: required local array length.
  std::uint64_t local_array_size = 0;

  // --- bookkeeping consumed by update_light_inspector ------------------
  /// Phase each local iteration was assigned to.
  std::vector<std::uint32_t> assigned_phase;
  /// Element a buffer slot folds into (slot -> element).
  std::vector<std::uint32_t> slot_elem;
  /// Slots freed by incremental updates, available for reuse.
  std::vector<std::uint32_t> free_slots;

  /// Iterations per phase (load-balance analysis, Sec. 5.4.3).
  std::vector<std::uint64_t> phase_sizes() const;
  /// Total deferred references (== total second-loop entries).
  std::uint64_t total_deferred() const;
};

/// Runs the LightInspector for processor `proc`.
///
/// Complexity: O(num_iterations * num_refs); no communication.
/// Throws precondition_error on ragged refs or out-of-range elements.
InspectorResult run_light_inspector(const RotationSchedule& sched,
                                    std::uint32_t proc,
                                    const IterationRefs& iters,
                                    const LightInspectorOptions& opt = {});

/// Incremental variant (the paper's planned future work, Sec. 7): given a
/// previous result and the subset of local iterations whose references
/// changed, updates only the affected phases. Produces a result identical
/// to a full re-run (verified by property tests); the point is cost — the
/// engine charges cycles proportional to the touched iterations instead of
/// all of them.
///
/// `changed_local` lists local iteration indices (into iters.global_iter)
/// whose references differ from the run that produced `previous`. `iters`
/// must contain the *new* references for all iterations.
InspectorResult update_light_inspector(const RotationSchedule& sched,
                                       std::uint32_t proc,
                                       const IterationRefs& iters,
                                       const InspectorResult& previous,
                                       std::span<const std::uint32_t> changed_local,
                                       const LightInspectorOptions& opt = {});

}  // namespace earthred::inspector
