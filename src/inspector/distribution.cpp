#include "inspector/distribution.hpp"

#include "support/check.hpp"

namespace earthred::inspector {

Distribution parse_distribution(const std::string& name) {
  if (name == "block" || name == "b") return Distribution::Block;
  if (name == "cyclic" || name == "c") return Distribution::Cyclic;
  if (name == "block-cyclic" || name == "bc")
    return Distribution::BlockCyclic;
  throw check_error("unknown distribution '" + name +
                    "' (expected block|cyclic|block-cyclic)");
}

const char* to_string(Distribution d) {
  switch (d) {
    case Distribution::Block: return "block";
    case Distribution::Cyclic: return "cyclic";
    case Distribution::BlockCyclic: return "block-cyclic";
  }
  return "?";
}

std::vector<std::vector<std::uint32_t>> distribute_iterations(
    std::uint64_t num_iterations, std::uint32_t num_procs, Distribution d,
    std::uint32_t bc_block) {
  ER_EXPECTS(num_procs >= 1);
  std::vector<std::vector<std::uint32_t>> owned(num_procs);
  if (d == Distribution::BlockCyclic) {
    ER_EXPECTS(bc_block >= 1);
    for (std::uint64_t i = 0; i < num_iterations; ++i)
      owned[(i / bc_block) % num_procs].push_back(
          static_cast<std::uint32_t>(i));
    return owned;
  }
  if (d == Distribution::Block) {
    const std::uint64_t q = num_iterations / num_procs;
    const std::uint64_t r = num_iterations % num_procs;
    std::uint64_t start = 0;
    for (std::uint32_t p = 0; p < num_procs; ++p) {
      const std::uint64_t len = q + (p < r ? 1 : 0);
      owned[p].reserve(len);
      for (std::uint64_t i = 0; i < len; ++i)
        owned[p].push_back(static_cast<std::uint32_t>(start + i));
      start += len;
    }
  } else {
    for (std::uint32_t p = 0; p < num_procs; ++p)
      owned[p].reserve(num_iterations / num_procs + 1);
    for (std::uint64_t i = 0; i < num_iterations; ++i)
      owned[i % num_procs].push_back(static_cast<std::uint32_t>(i));
  }
  return owned;
}

}  // namespace earthred::inspector
