#include "inspector/distribution.hpp"

#include "support/check.hpp"

namespace earthred::inspector {

Distribution parse_distribution(const std::string& name) {
  if (name == "block" || name == "b") return Distribution::Block;
  if (name == "cyclic" || name == "c") return Distribution::Cyclic;
  if (name == "block-cyclic" || name == "bc")
    return Distribution::BlockCyclic;
  throw check_error("unknown distribution '" + name +
                    "' (expected block|cyclic|block-cyclic)");
}

const char* to_string(Distribution d) {
  switch (d) {
    case Distribution::Block: return "block";
    case Distribution::Cyclic: return "cyclic";
    case Distribution::BlockCyclic: return "block-cyclic";
  }
  return "?";
}

std::vector<std::vector<std::uint32_t>> distribute_iterations(
    std::uint64_t num_iterations, std::uint32_t num_procs, Distribution d,
    std::uint32_t bc_block) {
  ER_EXPECTS(num_procs >= 1);
  std::vector<std::vector<std::uint32_t>> owned(num_procs);
  if (d == Distribution::BlockCyclic) {
    ER_EXPECTS(bc_block >= 1);
    for (std::uint64_t i = 0; i < num_iterations; ++i)
      owned[(i / bc_block) % num_procs].push_back(
          static_cast<std::uint32_t>(i));
    return owned;
  }
  if (d == Distribution::Block) {
    const std::uint64_t q = num_iterations / num_procs;
    const std::uint64_t r = num_iterations % num_procs;
    std::uint64_t start = 0;
    for (std::uint32_t p = 0; p < num_procs; ++p) {
      const std::uint64_t len = q + (p < r ? 1 : 0);
      owned[p].reserve(len);
      for (std::uint64_t i = 0; i < len; ++i)
        owned[p].push_back(static_cast<std::uint32_t>(start + i));
      start += len;
    }
  } else {
    for (std::uint32_t p = 0; p < num_procs; ++p)
      owned[p].reserve(num_iterations / num_procs + 1);
    for (std::uint64_t i = 0; i < num_iterations; ++i)
      owned[i % num_procs].push_back(static_cast<std::uint32_t>(i));
  }
  return owned;
}

IterationHome locate_iteration(std::uint64_t num_iterations,
                               std::uint32_t num_procs, Distribution d,
                               std::uint32_t bc_block, std::uint64_t g) {
  ER_EXPECTS(num_procs >= 1);
  ER_EXPECTS(g < num_iterations);
  IterationHome home;
  switch (d) {
    case Distribution::Cyclic:
      home.proc = static_cast<std::uint32_t>(g % num_procs);
      home.local = static_cast<std::uint32_t>(g / num_procs);
      break;
    case Distribution::Block: {
      const std::uint64_t q = num_iterations / num_procs;
      const std::uint64_t r = num_iterations % num_procs;
      // The first r processors own q+1 iterations, the rest own q.
      if (g < (q + 1) * r) {
        home.proc = static_cast<std::uint32_t>(g / (q + 1));
        home.local = static_cast<std::uint32_t>(g % (q + 1));
      } else {
        const std::uint64_t g2 = g - (q + 1) * r;
        home.proc = static_cast<std::uint32_t>(r + g2 / q);
        home.local = static_cast<std::uint32_t>(g2 % q);
      }
      break;
    }
    case Distribution::BlockCyclic: {
      ER_EXPECTS(bc_block >= 1);
      // Every chunk before g's is complete (its end is <= g < n), so the
      // owner's earlier chunks contribute bc_block iterations each.
      const std::uint64_t chunk = g / bc_block;
      home.proc = static_cast<std::uint32_t>(chunk % num_procs);
      home.local = static_cast<std::uint32_t>((chunk / num_procs) * bc_block +
                                              g % bc_block);
      break;
    }
  }
  return home;
}

}  // namespace earthred::inspector
