// bench_plan_store: warm starts and incremental re-planning against the
// cold build — the two claims of the persistent plan store.
//
// For every kernel (fig1, euler, moldyn) x procs x k configuration:
//
//   cold     build_execution_plan from the kernel (distribution + full
//            LightInspector per processor), verification off so the
//            timing isolates the build itself.
//   warm     PlanStore::load of the persisted plan — header + checksum +
//            parse + budget-mode verifier, with every large array adopted
//            zero-copy from the file mapping. This is what a process
//            restart pays instead of `cold`.
//   patch    patch_execution_plan of the base plan for a small mutation
//            (16 rewired edges), i.e. the adaptive re-planning path; and
//   rebuild  build_execution_plan of the mutated kernel — what the patch
//            replaces.
//
// Correctness is gated in *every* mode: the loaded plan must be
// bit-identical to the cold build (plans_bit_identical), served zero-copy
// off the mapping, and the patched plan must be bit-identical to a fresh
// build of the mutated kernel AND pass the exhaustive plan verifier.
// Timing is gated in full mode only (--small drops the throughput gates
// for noisy CI runners): warm load >= 10x faster than cold build, and
// incremental patch >= 2x faster than the rebuild.
//
// Flags: --small, --reps=R, --mutate=N (default 16),
//        --store=<dir> (default: a scratch dir under /tmp, removed on
//        exit), --json=<path> (one JSONL record per configuration plus a
//        summary record).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/native_engine.hpp"
#include "core/plan_io.hpp"
#include "inspector/plan_verifier.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "service/plan_cache.hpp"
#include "service/plan_store.hpp"
#include "support/cpu_features.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace earthred {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-reps wall time of `fn` (minimum filters scheduler noise).
template <typename Fn>
double time_best(std::uint32_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::uint32_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

struct Workload {
  std::string name;
  mesh::Mesh mesh;
};

std::vector<Workload> make_workloads(bool small) {
  std::vector<Workload> w;
  w.push_back({"fig1", mesh::make_geometric_mesh(
                           small ? mesh::GeomMeshParams{1500, 9000, 11}
                                 : mesh::GeomMeshParams{9428, 59863, 11})});
  w.push_back({"euler", small ? mesh::euler_mesh_small()
                              : mesh::euler_mesh_large()});
  w.push_back({"moldyn", small ? mesh::moldyn_small() : mesh::moldyn_large()});
  return w;
}

std::unique_ptr<const core::PhasedKernel> kernel_for(const std::string& name,
                                                     mesh::Mesh m) {
  if (name == "fig1")
    return std::make_unique<kernels::Fig1Kernel>(
        kernels::Fig1Kernel::with_integer_values(std::move(m)));
  if (name == "euler")
    return std::make_unique<kernels::EulerKernel>(std::move(m));
  return std::make_unique<kernels::MoldynKernel>(std::move(m));
}

struct Measurement {
  std::string kernel;
  std::uint32_t procs = 0, k = 0;
  double cold_s = 0.0, warm_s = 0.0, patch_s = 0.0, rebuild_s = 0.0;
  std::uint64_t file_bytes = 0;
  bool zero_copy = false;
  bool load_identical = false;
  bool patch_identical = false;
  bool patch_verified = false;
  double load_ratio() const { return warm_s > 0 ? cold_s / warm_s : 0.0; }
  double patch_ratio() const {
    return patch_s > 0 ? rebuild_s / patch_s : 0.0;
  }
};

int run(const Options& opt) {
  const bool small = opt.get_bool("small", false);
  const auto reps =
      static_cast<std::uint32_t>(opt.get_int("reps", small ? 3 : 5));
  // Per-leg sample counts, scaled by how cheap the leg is: time_best
  // filters scheduler noise by taking the minimum, and on a busy host a
  // sub-millisecond load needs far more samples to reach its floor than
  // a multi-millisecond build does. --reps scales all three together.
  const std::uint32_t build_reps = reps * 2;
  const std::uint32_t load_reps = reps * 10;
  const std::uint32_t patch_reps = reps * 4;
  // Outer measurement rounds: one config's legs run back to back, so a
  // sustained contention burst (another tenant, a compiler job) poisons
  // every sample of that config no matter how many reps it takes. Whole
  // extra passes over the config matrix are separated by seconds, and
  // merging minima across rounds recovers the quiet-machine floor.
  const auto rounds = static_cast<std::uint32_t>(
      opt.get_int("rounds", small ? 2 : 3));
  const auto mutate =
      static_cast<std::uint64_t>(opt.get_int("mutate", 16));
  std::string store_dir = opt.get("store");
  const bool scratch = store_dir.empty();
  if (scratch)
    store_dir = (std::filesystem::temp_directory_path() /
                 "earthred-bench-planstore")
                    .string();

  const std::vector<std::uint32_t> procs_list =
      small ? std::vector<std::uint32_t>{4}
            : std::vector<std::uint32_t>{4, 8, 16};
  const std::vector<std::uint32_t> k_list =
      small ? std::vector<std::uint32_t>{2}
            : std::vector<std::uint32_t>{2, 4};

  std::filesystem::remove_all(store_dir);
  const service::PlanStore store(store_dir);
  std::vector<Measurement> results;
  bool all_correct = true;

  for (std::uint32_t round = 0; round < rounds; ++round) {
    std::size_t config_idx = 0;
    for (const Workload& wl : make_workloads(small)) {
      const std::unique_ptr<const core::PhasedKernel> kernel =
          kernel_for(wl.name, wl.mesh);
      const std::uint64_t fingerprint = service::kernel_fingerprint(*kernel);

      // The mutated twin for the patch leg: same mesh with `mutate` edges
      // rewired (the adaptive_moldyn neighbour-list drift in miniature).
      mesh::Mesh mutated_mesh = wl.mesh;
      const std::vector<std::uint32_t> changed =
          mesh::rewire_edges(mutated_mesh, mutate, /*seed=*/97);
      const std::unique_ptr<const core::PhasedKernel> mutated =
          kernel_for(wl.name, std::move(mutated_mesh));

      for (const std::uint32_t P : procs_list) {
        for (const std::uint32_t k : k_list) {
          core::PlanOptions popt;
          popt.num_procs = P;
          popt.k = k;
          popt.verify = false;  // timing isolates build/load/patch

          if (round == 0) {
            Measurement init;
            init.kernel = wl.name;
            init.procs = P;
            init.k = k;
            results.push_back(init);
          }
          Measurement& m = results[config_idx++];
          const auto merge = [round](double& best, double v) {
            best = round == 0 ? v : std::min(best, v);
          };

          const core::ExecutionPlan cold =
              core::build_execution_plan(*kernel, popt);
          merge(m.cold_s, time_best(build_reps, [&] {
                  (void)core::build_execution_plan(*kernel, popt);
                }));

          const service::PlanKey key =
              service::make_plan_key(*kernel, popt, fingerprint);
          std::string save_error;
          if (!store.save(key, cold, &save_error)) {
            std::fprintf(stderr, "plan save failed: %s\n",
                         save_error.c_str());
            return 1;
          }
          std::error_code ec;
          m.file_bytes = std::filesystem::file_size(store.path_for(key), ec);

          core::PlanLoadResult loaded = store.load(key);
          if (!loaded.ok()) {
            std::fprintf(stderr, "warm load rejected [%s]: %s\n",
                         loaded.error_code.c_str(), loaded.detail.c_str());
            return 1;
          }
          m.zero_copy = loaded.zero_copy && (round == 0 || m.zero_copy);
          m.load_identical = core::plans_bit_identical(*loaded.plan, cold) &&
                             (round == 0 || m.load_identical);
          merge(m.warm_s, time_best(load_reps, [&] { (void)store.load(key); }));

          const core::ExecutionPlan rebuilt =
              core::build_execution_plan(*mutated, popt);
          merge(m.rebuild_s, time_best(build_reps, [&] {
                  (void)core::build_execution_plan(*mutated, popt);
                }));
          const core::ExecutionPlan patched =
              core::patch_execution_plan(*mutated, cold, changed);
          merge(m.patch_s, time_best(patch_reps, [&] {
                  (void)core::patch_execution_plan(*mutated, cold, changed);
                }));
          m.patch_identical = core::plans_bit_identical(patched, rebuilt) &&
                              (round == 0 || m.patch_identical);

          inspector::PlanVerifyOptions vopt;
          vopt.exhaustive = true;
          m.patch_verified =
              inspector::verify_plan(patched.sched, patched.insp,
                                     patched.shape.num_edges,
                                     patched.shape.num_refs, vopt)
                  .ok() &&
              (round == 0 || m.patch_verified);

          all_correct = all_correct && m.zero_copy && m.load_identical &&
                        m.patch_identical && m.patch_verified;
        }
      }
    }
  }

  Table t("plan store: cold build vs warm load vs incremental patch (" +
          std::string(small ? "small" : "full") + ", " +
          std::to_string(mutate) + " edges mutated)");
  t.set_header({"kernel", "P", "k", "cold ms", "warm ms", "load x",
                "rebuild ms", "patch ms", "patch x", "file KB", "checks"});
  double worst_load = 1e300, worst_patch = 1e300;
  for (const Measurement& m : results) {
    worst_load = std::min(worst_load, m.load_ratio());
    worst_patch = std::min(worst_patch, m.patch_ratio());
    const std::string checks =
        std::string(m.load_identical ? "" : " load!=cold") +
        (m.zero_copy ? "" : " copy") +
        (m.patch_identical ? "" : " patch!=rebuild") +
        (m.patch_verified ? "" : " verify");
    t.add_row({m.kernel, std::to_string(m.procs), std::to_string(m.k),
               fmt_f(m.cold_s * 1e3, 3), fmt_f(m.warm_s * 1e3, 3),
               fmt_f(m.load_ratio(), 1) + "x",
               fmt_f(m.rebuild_s * 1e3, 3), fmt_f(m.patch_s * 1e3, 3),
               fmt_f(m.patch_ratio(), 1) + "x",
               fmt_group(static_cast<long long>(m.file_bytes / 1024)),
               checks.empty() ? "ok" : checks});
  }
  t.print(std::cout);

  const bool load_gate = worst_load >= 10.0;
  const bool patch_gate = worst_patch >= 2.0;
  std::printf(
      "worst warm-load speedup %.1fx (gate >= 10x: %s), worst patch "
      "speedup %.1fx (gate >= 2x: %s), correctness %s\n",
      worst_load, load_gate ? "PASS" : "FAIL", worst_patch,
      patch_gate ? "PASS" : "FAIL", all_correct ? "PASS" : "FAIL");

  if (opt.has("json")) {
    std::vector<std::string> rows;
    for (const Measurement& m : results) {
      JsonWriter w;
      w.field("kernel", m.kernel)
          .field("procs", m.procs)
          .field("k", m.k)
          .field("cold_build_seconds", m.cold_s)
          .field("warm_load_seconds", m.warm_s)
          .field("load_speedup", m.load_ratio())
          .field("rebuild_seconds", m.rebuild_s)
          .field("patch_seconds", m.patch_s)
          .field("patch_speedup", m.patch_ratio())
          .field("file_bytes", m.file_bytes)
          .field("zero_copy", m.zero_copy)
          .field("load_bit_identical", m.load_identical)
          .field("patch_bit_identical", m.patch_identical)
          .field("patch_exhaustive_verified", m.patch_verified);
      rows.push_back(w.str());
    }
    JsonWriter w;
    w.field("bench", "planstore")
        .field("hardware_threads",
               static_cast<std::uint64_t>(support::hardware_threads()))
        .field("small", small)
        .field("reps", static_cast<std::uint64_t>(reps))
        .field("mutated_edges", mutate)
        .raw_field("configs", json_array(rows))
        .field("worst_load_speedup", worst_load)
        .field("worst_patch_speedup", worst_patch)
        .field("all_bit_identical", all_correct);
    append_json_line(opt.get("json"), w.str());
    std::printf("appended JSON record to %s\n", opt.get("json").c_str());
  }

  if (scratch) std::filesystem::remove_all(store_dir);
  if (!all_correct) return 1;
  if (!small && (!load_gate || !patch_gate)) return 1;
  return 0;
}

}  // namespace
}  // namespace earthred

int main(int argc, char** argv) {
  try {
    return earthred::run(earthred::Options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_plan_store: %s\n", e.what());
    return 1;
  }
}
