// Ablation: fault injection and the reliability protocol.
//
// Two questions a robustness layer must answer before it is allowed near
// the figure benchmarks: (1) what does the acked, checksummed portion
// rotation cost when the network is healthy (the common case), and
// (2) how does execution time degrade — with results staying bit-exact —
// as message drop/corrupt/duplicate/delay rates climb.
//
// Table 1 sweeps k at zero fault rate and reports the protocol overhead
// against the unprotected engine. Table 2 sweeps a uniform fault rate at
// fixed k and reports cycles, injected faults, retransmits, and whether
// the reduction arrays are bit-identical to the fault-free reliable run
// (same schedule, same summation order — any difference is a protocol
// bug, not floating-point noise).
//
// Flags: --sweeps=N (default 10), --procs=P (default 8), --k=K (default 2),
//        --rates-x1000=0,5,20,50,100, --seed=S (default 0x5eed).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/reduction_engine.hpp"
#include "kernels/euler.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 10));
  const auto P = static_cast<std::uint32_t>(opt.get_int("procs", 8));
  const auto K = static_cast<std::uint32_t>(opt.get_int("k", 2));
  const auto rates = opt.get_int_list("rates-x1000", {0, 5, 20, 50, 100});
  const auto seed =
      static_cast<std::uint64_t>(opt.get_int("seed", 0x5eed));

  const kernels::EulerKernel kernel(mesh::euler_mesh_small());

  auto run = [&](std::uint32_t k, bool reliable, double rate,
                 bool collect) {
    core::RotationOptions ropt;
    ropt.num_procs = P;
    ropt.k = k;
    ropt.sweeps = sweeps;
    ropt.machine = bench::manna_machine();
    ropt.collect_results = collect;
    ropt.reliable = reliable;
    // Retry headroom for the high end of the sweep: drops and corruption
    // hit acks too, so the per-round success probability is the product
    // of both directions (see tests/test_faults.cpp).
    ropt.reliable_opt.max_retries = 40;
    if (rate > 0.0) {
      ropt.machine.fault.enabled = true;
      ropt.machine.fault.seed = seed;
      ropt.machine.fault.drop = rate;
      ropt.machine.fault.corrupt = rate;
      ropt.machine.fault.duplicate = rate;
      ropt.machine.fault.delay = rate;
    }
    return core::run_rotation_engine(kernel, ropt);
  };

  Table over("Ablation — reliability overhead at zero faults (euler 2K, P=" +
             std::to_string(P) + ")");
  over.set_header({"k", "unprotected", "reliable", "overhead",
                   "retransmits"});
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    const auto base = run(k, false, 0.0, false);
    const auto rel = run(k, true, 0.0, false);
    const double tb = bench::to_seconds(base.total_cycles);
    const double tr = bench::to_seconds(rel.total_cycles);
    over.add_row({std::to_string(k), fmt_f(tb, 3), fmt_f(tr, 3),
                  fmt_f(100.0 * (tr - tb) / tb, 1) + "%",
                  std::to_string(rel.reliable.retransmits)});
  }
  over.print(std::cout);

  const auto clean = run(K, true, 0.0, true);
  Table deg("Ablation — fault-rate sweep (euler 2K, P=" +
            std::to_string(P) + ", k=" + std::to_string(K) +
            ", reliable, drop=corrupt=dup=delay=rate)");
  deg.set_header({"rate", "seconds", "slowdown", "faults", "retransmits",
                  "acks", "bit-exact"});
  for (const auto r1000 : rates) {
    const double rate = static_cast<double>(r1000) / 1000.0;
    const auto r = run(K, true, rate, true);
    bool exact = true;
    for (std::size_t a = 0; a < clean.reduction.size() && exact; ++a)
      for (std::size_t i = 0; i < clean.reduction[a].size(); ++i)
        if (r.reduction[a][i] != clean.reduction[a][i]) {
          exact = false;
          break;
        }
    deg.add_row({fmt_f(rate, 3), fmt_f(bench::to_seconds(r.total_cycles), 3),
                 fmt_f(static_cast<double>(r.total_cycles) /
                           static_cast<double>(clean.total_cycles),
                       2) +
                     "x",
                 std::to_string(r.machine.faults.injected()),
                 std::to_string(r.reliable.retransmits),
                 std::to_string(r.reliable.acks_sent),
                 exact ? "yes" : "NO"});
  }
  deg.print(std::cout);
  return 0;
}
