// bench_hotpath: host-side hot-path profile of the native engine — the
// batched compute_phase executor against the per-edge virtual-dispatch
// fallback, and parallel against serial plan construction.
//
// Part 1 (executor): for each kernel (fig1, euler, moldyn), build one
// ExecutionPlan and run the same sweeps twice — once with
// SweepOptions::batch = false (per-edge compute_edge calls with a
// heap-backed `redirected` scatter copy) and once with batch = true (one
// compute_phase call per phase streaming the flattened indirection
// block). Reports edges/second for both and the speedup; also verifies
// the two executors produce bit-identical reduction and node-read arrays
// (the batch path performs the same FP operations in the same order).
//
// Part 2 (plan build): times build_execution_plan at build_threads = 1
// (serial, the pre-batching behavior) and build_threads = 0 (one task
// per hardware core). Each processor's reference gather + LightInspector
// run is independent, so the build should scale near-linearly in P on a
// multi-core host (on a single-core container both modes tie).
//
// Part 3 (plan verifier): times the unverified cold build, then the
// budget-mode structural invariant pass (inspector/plan_verifier.hpp)
// that PlanOptions::verify appends to it. The pass is budgeted at <5%
// of cold plan-build time — that is what lets CI leave it on for every
// Debug build. The pass must also come back clean on the built plan.
//
// Part 1b (compute backends): reruns the batched path once per compute
// backend (scalar baseline, then every SIMD tier the host supports) on
// the same plans. Every tier must agree bit-for-bit with scalar — that
// is the layer's acceptance bar — and in full mode the best SIMD tier
// must stay within 25% of scalar (>= 0.75x), which catches a broken
// dispatch path or a pathological tier without pretending these
// gather/scatter-bound kernels vectorize. (Measured across L1-, L2- and
// DRAM-resident meshes and several strategies — staged hardware
// gathers, manual packed loads, AVX-512CD conflict-detected scatter,
// software prefetch — bit-identical SIMD lands at 0.7-1.05x of the
// scalar loop on wide OOO x86: the ordered reduction scatter must stay
// scalar, and scalar loads already saturate the load ports that
// hardware gathers contend for. The speedup column is reported, not
// wished for.) --backend-json=<path> appends the comparison as a JSONL
// record (BENCH_backend.json in the repo).
//
// Part 1c (lowering strategies): reruns the batched path once per
// lowering strategy (phased rotation, privatized replicas, and the
// atomic CAS scatter where the host supports it) on per-strategy plans
// (the strategy is a plan knob — it forks the plan key). Privatized must
// agree with phased bit-for-bit on the integer-valued fig1 kernel (exact
// sums commute) and to 1e-9 relative tolerance on the FP kernels (the
// two strategies legally differ in summation association); atomic is
// tolerance-only by contract. In full mode the cost model's Auto pick
// must land within 10% of the best measured strategy (>= 0.9x) on every
// bench mesh — the gate that keeps the model honest against the
// hardware. --strategy-json=<path> appends the comparison as a JSONL
// record (BENCH_strategy.json in the repo).
//
// Part 1d (data layout): builds a layout=none and a layout=auto plan for
// euler on a large *shuffled* geometric mesh (node ids carry no locality
// — the worst case the layout pass exists for) and runs the batched path
// on both. The layout knob forks the plan, never the answer: the rcm
// plan must be bit-identical to layout=none (same FP operations at
// relabeled addresses — gated always), and in full mode the localized
// gathers + sequential scatters + cache-blocked tiles must buy >= 1.2x
// batched edges/s over layout=none on the DRAM-resident mesh.
// --layout-json=<path> appends the comparison as a JSONL record
// (BENCH_layout.json in the repo).
//
// Exit code: 0 when every kernel's executors agree bit-identically AND
// every backend agrees with scalar AND every strategy agrees within its
// contract AND the layout=auto results are bit-identical to layout=none
// AND (full mode only) the best batched speedup reaches 2x on
// euler or moldyn AND (full mode only) the best SIMD backend stays
// >= 0.75x of scalar AND (full mode only) the Auto strategy pick stays
// >= 0.9x of the best measured strategy AND (full mode only) the
// layout=auto plan reaches 1.2x of layout=none on the shuffled mesh AND
// (full mode only) the verifier overhead stays under 5%; nonzero
// otherwise. --small shrinks meshes/reps for CI smoke runs and drops the
// throughput gates (shared runners are too noisy to gate on throughput)
// — bit-identity stays gated.
//
// Flags: --small, --procs=P (default 4), --k=K (default 2),
//        --sweeps=S, --reps=R, --json=<path> (JSONL records),
//        --backend-json=<path> (backend-comparison JSONL record),
//        --strategy-json=<path> (strategy-comparison JSONL record),
//        --layout-json=<path> (layout-comparison JSONL record).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/backend.hpp"
#include "core/native_engine.hpp"
#include "core/strategy.hpp"
#include "support/cpu_features.hpp"
#include "inspector/plan_verifier.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace earthred {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Workload {
  std::string name;
  std::unique_ptr<const core::PhasedKernel> kernel;
  std::uint64_t num_edges = 0;
  /// Integer-valued sums (fig1): every strategy's result is exact, so
  /// phased and privatized must agree bit-for-bit despite reassociating.
  bool exact_sums = false;
};

std::vector<Workload> make_workloads(bool small) {
  std::vector<Workload> w;
  const auto add = [&](std::string name,
                       std::unique_ptr<const core::PhasedKernel> kernel,
                       bool exact_sums) {
    Workload wl;
    wl.name = std::move(name);
    wl.num_edges = kernel->shape().num_edges;
    wl.kernel = std::move(kernel);
    wl.exact_sums = exact_sums;
    w.push_back(std::move(wl));
  };
  add("fig1",
      std::make_unique<kernels::Fig1Kernel>(
          kernels::Fig1Kernel::with_integer_values(mesh::make_geometric_mesh(
              small ? mesh::GeomMeshParams{1500, 9000, 11}
                    : mesh::GeomMeshParams{9428, 59863, 11}))),
      /*exact_sums=*/true);
  add("euler",
      std::make_unique<kernels::EulerKernel>(small ? mesh::euler_mesh_small()
                                                   : mesh::euler_mesh_large()),
      /*exact_sums=*/false);
  add("moldyn",
      std::make_unique<kernels::MoldynKernel>(small ? mesh::moldyn_small()
                                                    : mesh::moldyn_large()),
      /*exact_sums=*/false);
  return w;
}

/// |a-b| <= tol * max(1, |a|, |b|) element-wise — the contract for
/// strategies that legally reassociate FP sums.
bool near_arrays(const std::vector<std::vector<double>>& a,
                 const std::vector<std::vector<double>>& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      const double mag =
          std::max({1.0, std::abs(a[i][j]), std::abs(b[i][j])});
      if (std::abs(a[i][j] - b[i][j]) > tol * mag) return false;
    }
  }
  return true;
}

bool same_arrays(const std::vector<std::vector<double>>& a,
                 const std::vector<std::vector<double>>& b) {
  return a == b;  // exact comparison: the executors must be bit-identical
}

/// Best-of-reps wall seconds for one executor mode.
double best_run(const core::PhasedKernel& kernel,
                const core::ExecutionPlan& plan, core::SweepOptions sopt,
                std::uint32_t reps, core::NativeResult* out) {
  double best = 0.0;
  for (std::uint32_t r = 0; r < reps; ++r) {
    core::NativeResult res = core::run_native_plan(kernel, plan, sopt);
    if (r == 0 || res.wall_seconds < best) best = res.wall_seconds;
    if (out && r == 0) *out = std::move(res);
  }
  return best;
}

int run(const Options& opt) {
  const bool small = opt.get_bool("small", false);
  const auto procs =
      static_cast<std::uint32_t>(opt.get_int("procs", 4));
  const auto k = static_cast<std::uint32_t>(opt.get_int("k", 2));
  const auto sweeps = static_cast<std::uint32_t>(
      opt.get_int("sweeps", small ? 2 : 10));
  const auto reps =
      static_cast<std::uint32_t>(opt.get_int("reps", small ? 2 : 5));

  const std::vector<Workload> workloads = make_workloads(small);

  // ---- Part 1: per-edge vs batched executor ---------------------------
  Table t("native sweep hot path: per-edge vs batched executor (P=" +
          std::to_string(procs) + ", k=" + std::to_string(k) +
          ", sweeps=" + std::to_string(sweeps) + ", best of " +
          std::to_string(reps) + ")");
  t.set_header({"kernel", "edges", "per-edge Medges/s", "batched Medges/s",
                "speedup", "bit-identical"});

  bool all_identical = true;
  double best_speedup = 0.0;
  std::vector<std::string> exec_json;
  for (const Workload& w : workloads) {
    core::PlanOptions popt;
    popt.num_procs = procs;
    popt.k = k;
    // Parts 1 and 1b profile (and bit-identity-gate) the phased hot
    // path; pin the strategy so EARTHRED_FORCE_STRATEGY (the CI
    // strategy-matrix) cannot reroute them onto the tolerance-only
    // atomic scatter. Part 1c measures the other strategies explicitly.
    popt.strategy = core::StrategyKind::Phased;
    const core::ExecutionPlan plan =
        core::build_execution_plan(*w.kernel, popt);

    core::SweepOptions sopt;
    sopt.sweeps = sweeps;

    core::NativeResult edge_res, batch_res;
    sopt.batch = false;
    const double edge_s = best_run(*w.kernel, plan, sopt, reps, &edge_res);
    sopt.batch = true;
    const double batch_s = best_run(*w.kernel, plan, sopt, reps, &batch_res);

    const bool identical =
        same_arrays(edge_res.reduction, batch_res.reduction) &&
        same_arrays(edge_res.node_read, batch_res.node_read);
    all_identical = all_identical && identical;

    const double total_edges =
        static_cast<double>(w.num_edges) * static_cast<double>(sweeps);
    const double edge_rate = edge_s > 0 ? total_edges / edge_s : 0.0;
    const double batch_rate = batch_s > 0 ? total_edges / batch_s : 0.0;
    const double speedup = edge_s > 0 && batch_s > 0 ? edge_s / batch_s : 0.0;
    if (w.name != "fig1")  // the gate applies to euler/moldyn (criterion)
      best_speedup = std::max(best_speedup, speedup);

    t.add_row({w.name, std::to_string(w.num_edges),
               fmt_f(edge_rate / 1e6, 2), fmt_f(batch_rate / 1e6, 2),
               fmt_f(speedup, 2) + "x", identical ? "yes" : "NO"});

    JsonWriter jw;
    jw.field("kernel", w.name)
        .field("edges", w.num_edges)
        .field("per_edge_seconds", edge_s)
        .field("batched_seconds", batch_s)
        .field("per_edge_edges_per_s", edge_rate)
        .field("batched_edges_per_s", batch_rate)
        .field("speedup", speedup)
        .field("bit_identical", identical);
    exec_json.push_back(jw.str());
  }
  t.print(std::cout);

  // ---- Part 1b: compute backends on the batched path ------------------
  // Scalar-batched is the baseline; every compiled-and-supported SIMD
  // tier runs the same plans and must agree bit-for-bit (the tiers
  // vectorize gather + arithmetic but keep scatter accumulation order).
  std::vector<core::BackendKind> simd_kinds;
  for (const core::BackendKind kind :
       {core::BackendKind::Avx2, core::BackendKind::Avx512})
    if (core::backend_supported(kind)) simd_kinds.push_back(kind);

  Table bt1("compute backends: scalar vs SIMD batched path (cpu: " +
            support::to_string(support::host_cpu_features()) + ")");
  bt1.set_header({"kernel", "scalar Medges/s", "avx2", "avx512",
                  "best speedup", "bit-identical"});
  bool backend_identical = true;
  double best_backend_speedup = 0.0;
  std::vector<std::string> backend_json;
  for (const Workload& w : workloads) {
    core::PlanOptions bpopt;
    bpopt.num_procs = procs;
    bpopt.k = k;
    bpopt.strategy = core::StrategyKind::Phased;  // see Part 1 comment
    const core::ExecutionPlan plan =
        core::build_execution_plan(*w.kernel, bpopt);
    core::SweepOptions sopt;
    sopt.sweeps = sweeps;
    sopt.batch = true;

    sopt.backend = core::BackendKind::Scalar;
    core::NativeResult scalar_res;
    const double scalar_s =
        best_run(*w.kernel, plan, sopt, reps, &scalar_res);
    const double total_edges =
        static_cast<double>(w.num_edges) * static_cast<double>(sweeps);

    double avx2_s = 0.0, avx512_s = 0.0;
    bool identical = true;
    double best_kernel_speedup = 0.0;
    for (const core::BackendKind kind : simd_kinds) {
      sopt.backend = kind;
      core::NativeResult res;
      const double s = best_run(*w.kernel, plan, sopt, reps, &res);
      identical = identical && same_arrays(res.reduction,
                                           scalar_res.reduction) &&
                  same_arrays(res.node_read, scalar_res.node_read);
      (kind == core::BackendKind::Avx2 ? avx2_s : avx512_s) = s;
      if (s > 0.0)
        best_kernel_speedup = std::max(best_kernel_speedup, scalar_s / s);
    }
    backend_identical = backend_identical && identical;
    best_backend_speedup =
        std::max(best_backend_speedup, best_kernel_speedup);

    const auto spd = [&](double s) {
      return s > 0.0 ? fmt_f(scalar_s / s, 2) + "x" : std::string("-");
    };
    bt1.add_row({w.name,
                 fmt_f(scalar_s > 0 ? total_edges / scalar_s / 1e6 : 0.0, 2),
                 spd(avx2_s), spd(avx512_s),
                 fmt_f(best_kernel_speedup, 2) + "x",
                 identical ? "yes" : "NO"});

    JsonWriter jw;
    jw.field("kernel", w.name)
        .field("edges", w.num_edges)
        .field("scalar_seconds", scalar_s)
        .field("avx2_seconds", avx2_s)
        .field("avx512_seconds", avx512_s)
        .field("avx2_speedup", avx2_s > 0 ? scalar_s / avx2_s : 0.0)
        .field("avx512_speedup", avx512_s > 0 ? scalar_s / avx512_s : 0.0)
        .field("best_speedup", best_kernel_speedup)
        .field("bit_identical", identical);
    backend_json.push_back(jw.str());
  }
  bt1.print(std::cout);

  // ---- Part 1c: lowering strategies on the batched path ---------------
  // The strategy is a plan knob (it forks the plan key), so each strategy
  // gets its own plan build. Phased is the reference; privatized must
  // match it exactly on the integer fig1 kernel and to 1e-9 relative
  // tolerance on the FP kernels; atomic (when the host has lock-free
  // atomic_ref<double>) is tolerance-only by contract. The Auto pick is
  // resolved through the same cost model the compiler pass and the
  // runtime use, and in full mode its measured rate must stay >= 0.9x of
  // the best measured strategy on every mesh.
  const bool atomic_ok = core::strategy_supported(core::StrategyKind::Atomic);
  std::vector<core::StrategyKind> strat_kinds = {
      core::StrategyKind::Phased, core::StrategyKind::Privatized};
  if (atomic_ok) strat_kinds.push_back(core::StrategyKind::Atomic);

  Table st("lowering strategies: batched path per strategy (P=" +
           std::to_string(procs) + ", k=" + std::to_string(k) +
           ", atomic " + (atomic_ok ? "supported" : "unsupported") + ")");
  st.set_header({"kernel", "phased Medges/s", "privatized", "atomic",
                 "auto pick", "auto/best", "agree"});
  bool strategies_agree = true;
  double worst_auto_ratio = 1.0;
  std::vector<std::string> strategy_json;
  for (const Workload& w : workloads) {
    const double total_edges =
        static_cast<double>(w.num_edges) * static_cast<double>(sweeps);
    core::SweepOptions sopt;
    sopt.sweeps = sweeps;
    sopt.batch = true;

    core::NativeResult phased_res;
    double rate[3] = {0.0, 0.0, 0.0};
    bool agree = true;
    for (std::size_t i = 0; i < strat_kinds.size(); ++i) {
      core::PlanOptions spopt;
      spopt.num_procs = procs;
      spopt.k = k;
      spopt.strategy = strat_kinds[i];
      const core::ExecutionPlan plan =
          core::build_execution_plan(*w.kernel, spopt);
      core::NativeResult res;
      const double s = best_run(*w.kernel, plan, sopt, reps, &res);
      rate[i] = s > 0.0 ? total_edges / s : 0.0;
      if (strat_kinds[i] == core::StrategyKind::Phased) {
        phased_res = std::move(res);
        continue;
      }
      const bool exact_required =
          w.exact_sums && strat_kinds[i] == core::StrategyKind::Privatized;
      const bool match =
          exact_required
              ? same_arrays(res.reduction, phased_res.reduction) &&
                    same_arrays(res.node_read, phased_res.node_read)
              : near_arrays(res.reduction, phased_res.reduction, 1e-9) &&
                    near_arrays(res.node_read, phased_res.node_read, 1e-9);
      agree = agree && match;
    }
    strategies_agree = strategies_agree && agree;

    const core::StrategyKind auto_pick = core::resolve_strategy(
        core::StrategyKind::Auto,
        core::strategy_inputs(w.kernel->shape(), procs, k));
    double best_rate = 0.0, auto_rate = 0.0;
    for (std::size_t i = 0; i < strat_kinds.size(); ++i) {
      best_rate = std::max(best_rate, rate[i]);
      if (strat_kinds[i] == auto_pick) auto_rate = rate[i];
    }
    const double auto_ratio = best_rate > 0.0 ? auto_rate / best_rate : 0.0;
    worst_auto_ratio = std::min(worst_auto_ratio, auto_ratio);

    st.add_row({w.name, fmt_f(rate[0] / 1e6, 2), fmt_f(rate[1] / 1e6, 2),
                atomic_ok ? fmt_f(rate[2] / 1e6, 2) : std::string("-"),
                std::string(core::to_string(auto_pick)),
                fmt_f(auto_ratio, 2) + "x", agree ? "yes" : "NO"});

    JsonWriter jw;
    jw.field("kernel", w.name)
        .field("edges", w.num_edges)
        .field("exact_sums", w.exact_sums)
        .field("phased_edges_per_s", rate[0])
        .field("privatized_edges_per_s", rate[1])
        .field("atomic_edges_per_s", atomic_ok ? rate[2] : 0.0)
        .field("auto_pick", std::string(core::to_string(auto_pick)))
        .field("auto_over_best", auto_ratio)
        .field("agree", agree);
    strategy_json.push_back(jw.str());
  }
  st.print(std::cout);

  // ---- Part 1d: data-layout pass on the batched path ------------------
  // A dedicated workload: euler on a large geometric mesh whose node ids
  // are shuffled, so neither gathers nor scatters carry any incidental
  // locality. The paper-faithful layout=none plan walks that randomness;
  // layout=auto renumbers (portion-preserving RCM), reorders each phase
  // target-stable, and tiles — and must produce bit-identical results,
  // because every transformation is an FP-order-preserving isomorphism.
  // Full-mode sizing: the gather-reachable node data must overflow the
  // LLC (the bench host's is 260 MiB), or "DRAM-resident" silently means
  // "LLC-resident" and the measured win shrinks to the L2-vs-LLC gap.
  // --layout-nodes / --layout-edges override for probing other regimes.
  const auto lay_nodes = static_cast<std::uint32_t>(
      opt.get_int("layout-nodes", small ? 20000 : 6000000));
  const auto lay_edges_req = static_cast<std::uint64_t>(
      opt.get_int("layout-edges", small ? 80000 : 24000000));
  const mesh::GeomMeshParams lay_params = {lay_nodes, lay_edges_req, 33};
  mesh::Mesh lay_mesh = mesh::make_geometric_mesh(lay_params);
  {
    std::vector<std::uint32_t> shuffle(lay_mesh.num_nodes);
    std::iota(shuffle.begin(), shuffle.end(), 0u);
    Xoshiro256 rng(20260808);
    for (std::uint32_t i = lay_mesh.num_nodes; i > 1; --i)
      std::swap(shuffle[i - 1], shuffle[rng.below(i)]);
    lay_mesh = mesh::renumber(lay_mesh, shuffle);
  }
  const std::uint64_t lay_edges = lay_mesh.num_edges();
  const kernels::EulerKernel lay_kernel(std::move(lay_mesh));
  const double lay_total_edges =
      static_cast<double>(lay_edges) * static_cast<double>(sweeps);

  const core::LayoutKind lay_kinds[2] = {core::LayoutKind::None,
                                         core::LayoutKind::Auto};
  double lay_s[2] = {0.0, 0.0};
  core::NativeResult lay_res[2];
  core::LayoutKind lay_applied[2] = {core::LayoutKind::None,
                                     core::LayoutKind::None};
  std::uint32_t lay_tiles[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    core::PlanOptions lpopt;
    lpopt.num_procs = procs;
    lpopt.k = k;
    lpopt.strategy = core::StrategyKind::Phased;  // see Part 1 comment
    lpopt.layout = lay_kinds[i];
    const core::ExecutionPlan plan =
        core::build_execution_plan(lay_kernel, lpopt);
    lay_applied[i] = plan.applied_layout;
    lay_tiles[i] = plan.tile_iters;
    core::SweepOptions lsopt;
    lsopt.sweeps = sweeps;
    lsopt.batch = true;
    lay_s[i] = best_run(lay_kernel, plan, lsopt, reps, &lay_res[i]);
  }
  const bool layout_identical =
      same_arrays(lay_res[0].reduction, lay_res[1].reduction) &&
      same_arrays(lay_res[0].node_read, lay_res[1].node_read);
  const double lay_none_rate =
      lay_s[0] > 0 ? lay_total_edges / lay_s[0] : 0.0;
  const double lay_auto_rate =
      lay_s[1] > 0 ? lay_total_edges / lay_s[1] : 0.0;
  const double layout_speedup =
      lay_s[0] > 0 && lay_s[1] > 0 ? lay_s[0] / lay_s[1] : 0.0;

  Table lt("data layout: batched path on a shuffled euler mesh (" +
           std::to_string(lay_edges) + " edges, P=" + std::to_string(procs) +
           ", k=" + std::to_string(k) + ")");
  lt.set_header({"layout", "applied", "tile iters", "batched Medges/s",
                 "speedup", "bit-identical"});
  lt.add_row({"none", std::string(core::to_string(lay_applied[0])),
              lay_tiles[0] ? std::to_string(lay_tiles[0]) : "-",
              fmt_f(lay_none_rate / 1e6, 2), "1.00x", "-"});
  lt.add_row({"auto", std::string(core::to_string(lay_applied[1])),
              lay_tiles[1] ? std::to_string(lay_tiles[1]) : "-",
              fmt_f(lay_auto_rate / 1e6, 2), fmt_f(layout_speedup, 2) + "x",
              layout_identical ? "yes" : "NO"});
  lt.print(std::cout);

  // ---- Part 2: serial vs parallel plan build --------------------------
  const unsigned hw = support::hardware_threads();
  const Workload& build_wl = workloads[1];  // euler: the largest inspector
  core::PlanOptions popt;
  popt.num_procs = procs;
  popt.k = k;

  const auto time_build = [&](std::uint32_t threads) {
    popt.build_threads = threads;
    double best = 0.0;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      const core::ExecutionPlan plan =
          core::build_execution_plan(*build_wl.kernel, popt);
      const double s = seconds_since(t0);
      (void)plan;
      if (r == 0 || s < best) best = s;
    }
    return best;
  };
  const double serial_s = time_build(1);
  const double parallel_s = time_build(0);
  const double build_speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;

  Table bt("plan build: serial vs parallel (" + build_wl.name + ", P=" +
           std::to_string(procs) + ", " + std::to_string(hw) +
           " hardware threads)");
  bt.set_header({"mode", "build ms", "speedup"});
  bt.add_row({"serial (build_threads=1)", fmt_f(serial_s * 1e3, 3), "1.00x"});
  bt.add_row({"parallel (build_threads=0)", fmt_f(parallel_s * 1e3, 3),
              fmt_f(build_speedup, 2) + "x"});
  bt.print(std::cout);

  // ---- Part 3: plan-verifier overhead on a cold build -----------------
  // Serial build (build_threads=1) so the verifier pass is measured
  // against a deterministic baseline rather than a thread-pool race.
  // PlanOptions::verify adds exactly one budget-mode verify_plan call to
  // the build, so the overhead is that call's cost over the unverified
  // build — timing the pass directly instead of differencing two noisy
  // multi-millisecond builds keeps the gate stable on shared runners.
  popt.build_threads = 1;
  popt.verify = false;
  double unverified_s = 0.0;
  for (std::uint32_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    const core::ExecutionPlan plan =
        core::build_execution_plan(*build_wl.kernel, popt);
    const double s = seconds_since(t0);
    (void)plan;
    if (r == 0 || s < unverified_s) unverified_s = s;
  }
  const core::ExecutionPlan vplan =
      core::build_execution_plan(*build_wl.kernel, popt);
  inspector::PlanVerifyOptions vopt;
  vopt.exhaustive = false;  // what PlanOptions::verify runs in the build
  double verify_s = 0.0;
  bool verify_clean = true;
  for (std::uint32_t r = 0; r < std::max(reps, 3u); ++r) {
    const auto t0 = Clock::now();
    const inspector::PlanVerifyReport vrep = inspector::verify_plan(
        vplan.sched, vplan.insp, vplan.shape.num_edges, vplan.shape.num_refs,
        vopt);
    const double s = seconds_since(t0);
    verify_clean = verify_clean && vrep.ok();
    if (r == 0 || s < verify_s) verify_s = s;
  }
  const double verify_overhead =
      unverified_s > 0 ? verify_s / unverified_s : 0.0;

  Table vt("plan verifier: cold-build overhead (" + build_wl.name +
           ", P=" + std::to_string(procs) + ", k=" + std::to_string(k) +
           ", best of " + std::to_string(reps) + ")");
  vt.set_header({"pass", "ms", "overhead"});
  vt.add_row({"cold build (verify=off)", fmt_f(unverified_s * 1e3, 3), "-"});
  vt.add_row({"verify pass (budget mode)", fmt_f(verify_s * 1e3, 3),
              fmt_f(verify_overhead * 100.0, 2) + "%"});
  vt.print(std::cout);

  const bool verify_ok = verify_clean && (small || verify_overhead < 0.05);
  std::printf("plan verifier overhead %.2f%% of cold build, report %s %s\n",
              verify_overhead * 100.0, verify_clean ? "clean" : "NOT CLEAN",
              small ? "(smoke mode: overhead not gated)"
                    : (verify_ok ? "(< 5%: PASS)" : "(>= 5%: FAIL)"));

  const bool speedup_ok = small || best_speedup >= 2.0;
  std::printf(
      "batched executor bit-identical to per-edge: %s; best euler/moldyn "
      "speedup %.2fx %s\n",
      all_identical ? "yes" : "NO",
      best_speedup,
      small ? "(smoke mode: not gated)"
            : (speedup_ok ? "(>= 2x: PASS)" : "(< 2x: FAIL)"));

  // Backend gate (full mode, SIMD-capable hosts only): bit-identity is
  // gated always; the best SIMD tier must stay within 25% of the scalar
  // batched loop on at least one kernel. These kernels are gather/
  // scatter-bound with a scalar-ordered reduction scatter, so parity is
  // the honest expectation (see the header comment) — the floor exists
  // to catch a broken dispatch path or a pathologically slow tier, and
  // the actual ratio is reported and recorded in the JSON.
  const bool backend_speedup_ok =
      small || simd_kinds.empty() || best_backend_speedup >= 0.75;
  std::printf(
      "SIMD backends bit-identical to scalar: %s; best SIMD speedup "
      "%.2fx %s\n",
      backend_identical ? "yes" : "NO", best_backend_speedup,
      simd_kinds.empty()
          ? "(no SIMD tier on this host: not gated)"
          : (small ? "(smoke mode: not gated)"
                   : (backend_speedup_ok ? "(>= 0.75x parity floor: PASS)"
                                         : "(< 0.75x parity floor: FAIL)")));

  // Strategy gate: agreement (exact or tolerance per contract) is gated
  // always; the Auto pick must reach 0.9x of the best measured strategy
  // in full mode. 0.9x rather than 1.0x because the model prices memory
  // traffic and synchronization, not cache residency — a 10% band keeps
  // the gate meaningful without chasing run-to-run noise.
  const bool strategy_auto_ok = small || worst_auto_ratio >= 0.9;
  std::printf(
      "strategies agree within contract: %s; worst auto/best ratio "
      "%.2fx %s\n",
      strategies_agree ? "yes" : "NO", worst_auto_ratio,
      small ? "(smoke mode: not gated)"
            : (strategy_auto_ok ? "(>= 0.9x: PASS)" : "(< 0.9x: FAIL)"));

  // Layout gate: bit-identity to layout=none is gated always (the whole
  // design rests on the pass being an FP-order-preserving isomorphism);
  // the 1.2x throughput floor applies in full mode on the shuffled
  // DRAM-resident mesh, where localized gathers and sequential scatters
  // are exactly what the pass sells.
  const bool layout_speedup_ok = small || layout_speedup >= 1.2;
  std::printf(
      "layout=auto bit-identical to layout=none: %s; shuffled-mesh "
      "speedup %.2fx %s\n",
      layout_identical ? "yes" : "NO", layout_speedup,
      small ? "(smoke mode: not gated)"
            : (layout_speedup_ok ? "(>= 1.2x: PASS)" : "(< 1.2x: FAIL)"));

  if (opt.has("strategy-json")) {
    JsonWriter w;
    w.field("bench", "strategy")
        .field("small", small)
        .field("procs", static_cast<std::uint64_t>(procs))
        .field("k", static_cast<std::uint64_t>(k))
        .field("sweeps", static_cast<std::uint64_t>(sweeps))
        .field("reps", static_cast<std::uint64_t>(reps))
        .field("hardware_threads", static_cast<std::uint64_t>(hw))
        .field("atomic_supported", atomic_ok)
        .raw_field("kernels", json_array(strategy_json))
        .field("agree", strategies_agree)
        .field("worst_auto_over_best", worst_auto_ratio);
    append_json_line(opt.get("strategy-json"), w.str());
    std::printf("appended strategy JSON record to %s\n",
                opt.get("strategy-json").c_str());
  }

  if (opt.has("layout-json")) {
    JsonWriter w;
    w.field("bench", "layout")
        .field("small", small)
        .field("procs", static_cast<std::uint64_t>(procs))
        .field("k", static_cast<std::uint64_t>(k))
        .field("sweeps", static_cast<std::uint64_t>(sweeps))
        .field("reps", static_cast<std::uint64_t>(reps))
        .field("kernel", "euler")
        .field("edges", lay_edges)
        .field("nodes", static_cast<std::uint64_t>(lay_params.num_nodes))
        .field("caches", support::to_string(support::host_cache_info()))
        .field("none_applied",
               std::string(core::to_string(lay_applied[0])))
        .field("auto_applied",
               std::string(core::to_string(lay_applied[1])))
        .field("tile_iters", static_cast<std::uint64_t>(lay_tiles[1]))
        .field("none_seconds", lay_s[0])
        .field("auto_seconds", lay_s[1])
        .field("none_edges_per_s", lay_none_rate)
        .field("auto_edges_per_s", lay_auto_rate)
        .field("speedup", layout_speedup)
        .field("bit_identical", layout_identical);
    append_json_line(opt.get("layout-json"), w.str());
    std::printf("appended layout JSON record to %s\n",
                opt.get("layout-json").c_str());
  }

  if (opt.has("backend-json")) {
    JsonWriter w;
    w.field("bench", "backend")
        .field("small", small)
        .field("procs", static_cast<std::uint64_t>(procs))
        .field("k", static_cast<std::uint64_t>(k))
        .field("sweeps", static_cast<std::uint64_t>(sweeps))
        .field("reps", static_cast<std::uint64_t>(reps))
        .field("hardware_threads", static_cast<std::uint64_t>(hw))
        .field("cpu", support::to_string(support::host_cpu_features()))
        .raw_field("kernels", json_array(backend_json))
        .field("bit_identical", backend_identical)
        .field("best_simd_speedup", best_backend_speedup);
    append_json_line(opt.get("backend-json"), w.str());
    std::printf("appended backend JSON record to %s\n",
                opt.get("backend-json").c_str());
  }

  if (opt.has("json")) {
    JsonWriter w;
    w.field("bench", "hotpath")
        .field("small", small)
        .field("procs", static_cast<std::uint64_t>(procs))
        .field("k", static_cast<std::uint64_t>(k))
        .field("sweeps", static_cast<std::uint64_t>(sweeps))
        .field("reps", static_cast<std::uint64_t>(reps))
        .field("hardware_threads", static_cast<std::uint64_t>(hw))
        .raw_field("executors", json_array(exec_json))
        .field("plan_build_serial_seconds", serial_s)
        .field("plan_build_parallel_seconds", parallel_s)
        .field("plan_build_speedup", build_speedup)
        .field("verify_off_build_seconds", unverified_s)
        .field("verify_pass_seconds", verify_s)
        .field("verify_overhead_fraction", verify_overhead)
        .field("bit_identical", all_identical)
        .field("best_batched_speedup", best_speedup);
    append_json_line(opt.get("json"), w.str());
    std::printf("appended JSON record to %s\n", opt.get("json").c_str());
  }
  return all_identical && speedup_ok && verify_ok && backend_identical &&
                 backend_speedup_ok && strategies_agree &&
                 strategy_auto_ok && layout_identical && layout_speedup_ok
             ? 0
             : 1;
}

}  // namespace
}  // namespace earthred

int main(int argc, char** argv) {
  const earthred::Options opt(argc, argv);
  return earthred::run(opt);
}
