// Ablation: data-cache size.
//
// The paper attributes mvm's better-than-linear speedups on 4-16
// processors to cache effects: the rotating x portion shrinks with P until
// it fits the 16 KB i860XP cache. Sweeping the modeled cache size (and
// disabling the cache entirely) isolates that mechanism: without a cache
// the superlinearity must disappear.
//
// Flags: --sweeps=N (default 5), --procs=1,4,16, --sizes-kb=4,16,64.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/mvm_engine.hpp"
#include "core/sequential.hpp"
#include "sparse/nas_cg.hpp"
#include "support/options.hpp"
#include "support/prng.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 5));
  const auto procs_list = opt.get_int_list("procs", {1, 4, 16});
  const auto sizes = opt.get_int_list("sizes-kb", {4, 16, 64});

  const sparse::CsrMatrix A =
      sparse::make_nas_cg_matrix(sparse::nas_class_w());
  std::vector<double> x(A.ncols());
  Xoshiro256 rng(1);
  for (auto& v : x) v = rng.uniform(-1, 1);

  Table t("Ablation — cache size vs mvm class W speedup (k=2)");
  std::vector<std::string> header{"cache"};
  for (auto p : procs_list) header.push_back("P=" + std::to_string(p));
  t.set_header(header);

  auto sweep_row = [&](const std::string& label,
                       const earth::MachineConfig& machine) {
    core::SequentialOptions sopt;
    sopt.sweeps = sweeps;
    sopt.machine = machine;
    sopt.collect_results = false;
    const double seq_s =
        bench::to_seconds(core::run_sequential_mvm(A, x, sopt).total_cycles);
    std::vector<std::string> row{label};
    for (const auto procs : procs_list) {
      core::MvmOptions mopt;
      mopt.num_procs = static_cast<std::uint32_t>(procs);
      mopt.k = 2;
      mopt.sweeps = sweeps;
      mopt.machine = machine;
      mopt.collect_results = false;
      const double sec = bench::to_seconds(
          core::run_mvm_engine(A, x, mopt).total_cycles);
      row.push_back(fmt_f(seq_s / sec, 2));
    }
    t.add_row(row);
  };

  for (const auto kb : sizes) {
    earth::MachineConfig machine = bench::manna_machine();
    machine.cache.size_bytes = static_cast<std::uint32_t>(kb) * 1024;
    sweep_row(std::to_string(kb) + " KB", machine);
  }
  {
    earth::MachineConfig machine = bench::manna_machine();
    machine.cache.enabled = false;
    sweep_row("disabled", machine);
  }
  t.print(std::cout);
  return 0;
}
