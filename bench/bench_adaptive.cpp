// Adaptive irregular reductions (the paper's Sec. 7 future work, realized
// as an extension): moldyn with the neighbour list rebuilt every f time
// steps, comparing
//
//   classic      — communicating inspector re-run at every rebuild;
//   light        — full LightInspector re-run (local, no communication);
//   incremental  — incremental LightInspector touching only changed
//                  interactions (the paper's proposed future work).
//
// The smaller the rebuild period, the more the preprocessing cost matters
// — the regime where the rotation strategy's communication-free, (and with
// the incremental variant, change-proportional) preprocessing wins.
//
// Flags: --procs=P (default 16), --epochs=E (default 6),
//        --periods=1,5,10,20 (sweeps per rebuild), --dataset=small|large.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "kernels/adaptive_moldyn.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);

  const auto P = static_cast<std::uint32_t>(opt.get_int("procs", 16));
  const auto epochs = static_cast<std::uint32_t>(opt.get_int("epochs", 6));
  const auto periods = opt.get_int_list("periods", {1, 5, 10, 20});
  const earth::MachineConfig machine = bench::machine_from_options(opt);

  const bool euler = opt.get("kernel", "moldyn") == "euler";
  kernels::AdaptiveOptions aopt;
  kernels::AdaptiveEulerOptions eopt;
  if (opt.get("dataset", "small") == "large") {
    aopt.dataset = mesh::MoldynParams{14, 65856, 0.05, 19941123};
    eopt.dataset = mesh::GeomMeshParams{9428, 59863, 20020416};
  }
  aopt.epochs = epochs;
  eopt.epochs = epochs;

  std::printf("adaptive %s: %u processors, %u rebuild epochs\n",
              euler ? "euler" : "moldyn", P, epochs);
  Table t(std::string("Adaptive ") + (euler ? "euler" : "moldyn") +
          " — total time (simulated s) and preprocessing share by rebuild "
          "period");
  t.set_header({"sweeps/rebuild", "classic", "classic insp%", "light",
                "light insp%", "incremental", "incr insp%", "changed"});

  for (const auto period : periods) {
    aopt.sweeps_per_epoch = static_cast<std::uint32_t>(period);
    eopt.sweeps_per_epoch = static_cast<std::uint32_t>(period);

    core::ClassicOptions copt;
    copt.num_procs = P;
    copt.machine = machine;
    core::RotationOptions ropt;
    ropt.num_procs = P;
    ropt.k = 2;
    ropt.machine = machine;

    const auto classic =
        euler ? kernels::run_adaptive_euler_classic(eopt, copt)
              : kernels::run_adaptive_moldyn_classic(aopt, copt);
    const auto light =
        euler ? kernels::run_adaptive_euler_rotation(eopt, ropt, false)
              : kernels::run_adaptive_moldyn_rotation(aopt, ropt, false);
    const auto incr =
        euler ? kernels::run_adaptive_euler_rotation(eopt, ropt, true)
              : kernels::run_adaptive_moldyn_rotation(aopt, ropt, true);

    const auto pct = [](const kernels::AdaptiveResult& r) {
      return r.total_cycles
                 ? 100.0 * static_cast<double>(r.inspector_cycles) /
                       static_cast<double>(r.total_cycles)
                 : 0.0;
    };
    t.add_row({std::to_string(period),
               fmt_f(bench::to_seconds(classic.total_cycles), 3),
               fmt_f(pct(classic), 1),
               fmt_f(bench::to_seconds(light.total_cycles), 3),
               fmt_f(pct(light), 1),
               fmt_f(bench::to_seconds(incr.total_cycles), 3),
               fmt_f(pct(incr), 1),
               fmt_group(static_cast<long long>(incr.changed_interactions))});
  }
  t.print(std::cout);
  return 0;
}
