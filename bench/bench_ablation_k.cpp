// Ablation: the overlap parameter k beyond the paper's {1, 2, 4}.
//
// DESIGN.md calls out k as the central tuning knob: larger k gives more
// communication/computation overlap and tolerance to load imbalance, but
// more phases mean more fiber switches, more (smaller) messages, and less
// locality. The paper found k=2 the sweet spot; this sweep shows the full
// curve k = 1..8 so the trade-off is visible, at two machine sizes.
//
// Flags: --sweeps=N (default 50), --procs=8,32, --kmax=8,
//        --dataset=euler|moldyn (default euler).
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/euler.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 50));
  const auto kmax = static_cast<std::uint32_t>(opt.get_int("kmax", 8));
  const auto procs_list = opt.get_int_list("procs", {8, 32});
  const earth::MachineConfig machine = bench::machine_from_options(opt);

  std::unique_ptr<core::PhasedKernel> kernel;
  std::string name = opt.get("dataset", "euler");
  if (name == "moldyn") {
    kernel = std::make_unique<kernels::MoldynKernel>(mesh::moldyn_small());
  } else {
    kernel =
        std::make_unique<kernels::EulerKernel>(mesh::euler_mesh_small());
  }

  core::SequentialOptions sopt;
  sopt.sweeps = sweeps;
  sopt.machine = machine;
  sopt.collect_results = false;
  const double seq_s =
      bench::to_seconds(core::run_sequential_kernel(*kernel, sopt).total_cycles);
  std::printf("%s 2K, %u sweeps; sequential %.2f s\n", name.c_str(), sweeps,
              seq_s);

  Table t("Ablation — overlap parameter k (cyclic distribution)");
  std::vector<std::string> header{"k"};
  for (auto p : procs_list) {
    header.push_back("P=" + std::to_string(p) + " time");
    header.push_back("P=" + std::to_string(p) + " speedup");
    header.push_back("P=" + std::to_string(p) + " EU util");
  }
  t.set_header(header);

  for (std::uint32_t k = 1; k <= kmax; ++k) {
    std::vector<std::string> row{std::to_string(k)};
    for (const auto procs : procs_list) {
      core::RotationOptions ropt;
      ropt.num_procs = static_cast<std::uint32_t>(procs);
      ropt.k = k;
      ropt.sweeps = sweeps;
      ropt.machine = machine;
      ropt.collect_results = false;
      const core::RunResult r = core::run_rotation_engine(*kernel, ropt);
      const double sec = bench::to_seconds(r.total_cycles);
      row.push_back(fmt_f(sec, 2));
      row.push_back(fmt_f(seq_s / sec, 2));
      row.push_back(fmt_f(r.machine.eu_utilization(), 2));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  return 0;
}
