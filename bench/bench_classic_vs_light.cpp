// Sec. 5.4.3 comparison: the rotation strategy (LightInspector) versus the
// conventional inspector/executor scheme on the same simulated machine,
// using the euler meshes.
//
// The paper compares against Agrawal-Saltz results on an Intel Paragon:
// with partitioning and communication optimization, the 2K euler mesh got
// almost no speedup and the 10K mesh a relative 2->32 speedup of ~8; the
// rotation strategy was significantly better on the small mesh and
// comparable on the medium one. This bench reproduces that contrast on
// one substrate and also reports what each scheme pays in preprocessing
// (the classic inspector communicates; the LightInspector does not) and
// per-sweep communication volume (partition-dependent vs fixed).
//
// Flags: --sweeps=N (default 100), --procs=..., --dataset=small|large|both.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/classic_engine.hpp"
#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/euler.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"

namespace earthred {
namespace {

void run_dataset(const char* label, const mesh::Mesh& m,
                 const Options& opt) {
  const kernels::EulerKernel kernel(m);
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 100));
  const auto procs_list = opt.get_int_list("procs", {2, 4, 8, 16, 32});
  const earth::MachineConfig machine = bench::machine_from_options(opt);

  core::SequentialOptions sopt;
  sopt.sweeps = sweeps;
  sopt.machine = machine;
  sopt.collect_results = false;
  const core::RunResult seq = core::run_sequential_kernel(kernel, sopt);
  const double seq_s = bench::to_seconds(seq.total_cycles);
  std::printf("euler %s, %u sweeps; sequential %.2f s\n", label, sweeps,
              seq_s);

  Table t(std::string("Classic inspector/executor vs rotation+Light"
                      "Inspector (euler ") +
          label + ")");
  t.set_header({"P", "classic time", "classic speedup", "classic bytes",
                "classic insp", "rotation time", "rotation speedup",
                "rotation bytes", "rotation insp"});
  for (const auto procs : procs_list) {
    const auto P = static_cast<std::uint32_t>(procs);

    core::ClassicOptions copt;
    copt.num_procs = P;
    copt.sweeps = sweeps;
    copt.machine = machine;
    copt.collect_results = false;
    const core::RunResult c = core::run_classic_engine(kernel, copt);

    core::RotationOptions ropt;
    ropt.num_procs = P;
    ropt.k = 2;
    ropt.sweeps = sweeps;
    ropt.machine = machine;
    ropt.collect_results = false;
    const core::RunResult r = core::run_rotation_engine(kernel, ropt);

    const double ct = bench::to_seconds(c.total_cycles);
    const double rt = bench::to_seconds(r.total_cycles);
    t.add_row({std::to_string(P), fmt_f(ct, 2), fmt_f(seq_s / ct, 2),
               fmt_group(static_cast<long long>(c.machine.total_bytes())),
               fmt_f(bench::to_seconds(c.inspector_cycles) * 1e3, 2) + " ms",
               fmt_f(rt, 2), fmt_f(seq_s / rt, 2),
               fmt_group(static_cast<long long>(r.machine.total_bytes())),
               fmt_f(bench::to_seconds(r.inspector_cycles) * 1e3, 2) +
                   " ms"});
  }
  t.print(std::cout);

  // The paper's Sec. 5.4.3 reference numbers come from the classic scheme
  // on an Intel Paragon, whose software messaging costs dwarf EARTH's
  // (~100 us per message ~ 5,000 cycles at 50 MHz). Re-running the
  // classic executor under Paragon-like messaging reproduces the "almost
  // no speedup on the 2K mesh" behaviour the paper contrasts against.
  Table pt(std::string("Classic scheme under Paragon-like messaging "
                       "(euler ") +
           label + ")");
  pt.set_header({"P", "classic time", "classic speedup"});
  for (const auto procs : procs_list) {
    const auto P = static_cast<std::uint32_t>(procs);
    core::ClassicOptions copt;
    copt.num_procs = P;
    copt.sweeps = sweeps;
    copt.machine = machine;
    copt.machine.net.inject_overhead = 5000;
    copt.machine.net.latency = 5000;
    copt.machine.net.bytes_per_cycle = 0.5;
    copt.collect_results = false;
    const core::RunResult c = core::run_classic_engine(kernel, copt);
    const double ct = bench::to_seconds(c.total_cycles);
    pt.add_row({std::to_string(P), fmt_f(ct, 2), fmt_f(seq_s / ct, 2)});
  }
  pt.print(std::cout);
}

}  // namespace
}  // namespace earthred

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const std::string dataset = opt.get("dataset", "both");
  if (dataset == "small" || dataset == "both")
    run_dataset("2K", mesh::euler_mesh_small(), opt);
  if (dataset == "large" || dataset == "both")
    run_dataset("10K", mesh::euler_mesh_large(), opt);
  return 0;
}
