// Ablation: bulk rotation vs fine-grained pull (GET_SYNC) for mvm.
//
// Both are natural EARTH designs. The rotation strategy ships fixed-size
// portions around a ring; the pull design issues one split-phase remote
// read per distinct off-node x element and relies on outstanding-request
// volume to hide latency. This sweep compares time, message count, and
// bytes across machine sizes and link latencies on the class W matrix.
//
// Flags: --sweeps=N (default 3), --procs=4,16, --latencies=150,2000.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/mvm_engine.hpp"
#include "core/mvm_pull_engine.hpp"
#include "sparse/nas_cg.hpp"
#include "support/options.hpp"
#include "support/prng.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 3));
  const auto procs_list = opt.get_int_list("procs", {4, 16});
  const auto latencies = opt.get_int_list("latencies", {150, 2000});

  const sparse::CsrMatrix A =
      sparse::make_nas_cg_matrix(sparse::nas_class_w());
  std::vector<double> x(A.ncols());
  Xoshiro256 rng(1);
  for (auto& v : x) v = rng.uniform(-1, 1);

  Table t("Ablation — rotation vs pull mvm (class W, " +
          std::to_string(sweeps) + " sweeps)");
  t.set_header({"P", "latency", "engine", "time (s)", "msgs", "bytes"});

  for (const auto procs : procs_list) {
    for (const auto lat : latencies) {
      earth::MachineConfig machine = bench::manna_machine();
      machine.net.latency = static_cast<earth::Cycles>(lat);

      core::MvmOptions ropt;
      ropt.num_procs = static_cast<std::uint32_t>(procs);
      ropt.k = 2;
      ropt.sweeps = sweeps;
      ropt.machine = machine;
      ropt.collect_results = false;
      const core::RunResult rot = core::run_mvm_engine(A, x, ropt);

      core::MvmPullOptions popt;
      popt.num_procs = static_cast<std::uint32_t>(procs);
      popt.sweeps = sweeps;
      popt.machine = machine;
      popt.collect_results = false;
      const core::RunResult pull = core::run_mvm_pull_engine(A, x, popt);

      t.add_row({std::to_string(procs), std::to_string(lat), "rotation",
                 fmt_f(bench::to_seconds(rot.total_cycles), 3),
                 fmt_group(static_cast<long long>(rot.machine.total_msgs())),
                 fmt_group(static_cast<long long>(
                     rot.machine.total_bytes()))});
      t.add_row({std::to_string(procs), std::to_string(lat), "pull",
                 fmt_f(bench::to_seconds(pull.total_cycles), 3),
                 fmt_group(static_cast<long long>(
                     pull.machine.total_msgs())),
                 fmt_group(static_cast<long long>(
                     pull.machine.total_bytes()))});
    }
  }
  t.print(std::cout);
  return 0;
}
