// Figure 4: parallel performance of mvm (sparse matrix-vector multiply
// extracted from NAS CG) on the class W and class A matrices with
// k in {1, 2, 4}, P in {1, 2, 4, 8, 16, 32}.
//
// Paper reference points (Sec. 5.3):
//   class W (7,000 rows, 508,402 nnz): sequential 41.38 s; 2-proc
//     speedups 1.97/1.98/1.98; slightly superlinear on 4-16 procs (cache);
//     32-proc speedups 21.61 / 24.55 / 23.42 for k=1/2/4 — k=2 best,
//     beating k=1 by 13.99% and k=4 by at most 4.84%.
//   class A (14,000 rows, 1,853,104 nnz): sequential 154.55 s; 32-proc
//     speedups 28.41 / 30.65 / 30.21; 64-proc gap k2 vs k1 = 15.31%.
//
// Flags: --sweeps=N (default 10), --procs=..., --dataset=w|a|both,
//        --latency/--bandwidth/--cache-kb/--no-cache.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/mvm_engine.hpp"
#include "core/sequential.hpp"
#include "sparse/nas_cg.hpp"
#include "support/options.hpp"
#include "support/prng.hpp"

namespace earthred {
namespace {

void run_dataset(const char* label, const sparse::NasCgParams& params,
                 const Options& opt) {
  const sparse::CsrMatrix A = sparse::make_nas_cg_matrix(params);
  std::vector<double> x(A.ncols());
  Xoshiro256 rng(1);
  for (auto& v : x) v = rng.uniform(-1, 1);

  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 10));
  const auto procs_list = opt.get_int_list("procs", {1, 2, 4, 8, 16, 32});
  const earth::MachineConfig machine = bench::machine_from_options(opt);

  core::SequentialOptions sopt;
  sopt.sweeps = sweeps;
  sopt.machine = machine;
  sopt.collect_results = false;
  const core::RunResult seq = core::run_sequential_mvm(A, x, sopt);
  const double seq_s = bench::to_seconds(seq.total_cycles);
  std::printf("mvm class %s: %s rows, %s nonzeros, %u sweeps; sequential "
              "%.2f s\n",
              label, fmt_group(A.nrows()).c_str(),
              fmt_group(static_cast<long long>(A.nnz())).c_str(), sweeps,
              seq_s);

  std::vector<bench::Series> series;
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    bench::Series line;
    line.name = "k=" + std::to_string(k);
    for (const auto procs : procs_list) {
      const auto P = static_cast<std::uint32_t>(procs);
      core::MvmOptions mopt;
      mopt.num_procs = P;
      mopt.k = k;
      mopt.sweeps = sweeps;
      mopt.machine = machine;
      mopt.collect_results = false;
      const core::RunResult r = core::run_mvm_engine(A, x, mopt);
      line.points.push_back({P, bench::to_seconds(r.total_cycles),
                             seq_s / bench::to_seconds(r.total_cycles)});
    }
    series.push_back(std::move(line));
  }
  std::vector<std::uint32_t> procs_u32;
  procs_u32.reserve(procs_list.size());
  for (auto p : procs_list) procs_u32.push_back(static_cast<std::uint32_t>(p));

  const std::string title = std::string("Figure 4 (mvm class ") + label + ")";
  bench::print_figure(title, seq_s, procs_u32, series);
  bench::maybe_write_figure_json(opt, title, seq_s, procs_u32, series);

  // The paper's headline deltas at the largest configuration.
  const std::uint32_t top = procs_u32.back();
  const double t1 = series[0].seconds_at(top);
  const double t2 = series[1].seconds_at(top);
  const double t4 = series[2].seconds_at(top);
  if (t2 > 0) {
    std::printf("k=2 vs k=1 at P=%u: %+.2f%%   k=2 vs k=4: %+.2f%%\n", top,
                100.0 * (t1 - t2) / t2, 100.0 * (t4 - t2) / t2);
  }
}

}  // namespace
}  // namespace earthred

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const std::string dataset = opt.get("dataset", "both");
  if (dataset == "w" || dataset == "both")
    run_dataset("W", sparse::nas_class_w(), opt);
  if (dataset == "a" || dataset == "both")
    run_dataset("A", sparse::nas_class_a(), opt);
  return 0;
}
