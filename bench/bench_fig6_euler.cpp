// Figure 6: parallel performance of euler on the 2.8K-node and 9.4K-node
// meshes under the strategies 1c, 2c, 4c (k = 1/2/4 with cyclic iteration
// distribution) and 2b (k = 2, block distribution).
//
// Paper reference points (Sec. 5.4.2):
//   2K mesh : sequential 7.84 s; 2-proc speedups 1.10/1.20/1.17/1.24;
//             relative speedups 2->32 of 7.12 / 9.28 / 8.49 / 6.78.
//   10K mesh: sequential 29.07 s; 2-proc speedups 1.11/1.12/0.95/1.16;
//             relative speedups 2->32 of 7.62 / 10.36 / 9.95 / 6.94.
//   Cyclic beats block at P >= 8 (block suffers phase load imbalance).
//
// Flags: --sweeps=N (default 100), --procs=1,2,... , --dataset=small|large|both,
//        --imbalance (print phase load-balance table),
//        --latency/--bandwidth/--cache-kb/--no-cache.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/euler.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"

namespace earthred {
namespace {

struct Strategy {
  const char* name;
  std::uint32_t k;
  inspector::Distribution dist;
};

constexpr Strategy kStrategies[] = {
    {"1c", 1, inspector::Distribution::Cyclic},
    {"2c", 2, inspector::Distribution::Cyclic},
    {"4c", 4, inspector::Distribution::Cyclic},
    {"2b", 2, inspector::Distribution::Block},
};

void run_dataset(const char* label, const mesh::Mesh& m,
                 const Options& opt) {
  const kernels::EulerKernel kernel(m);
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 100));
  const auto procs_list =
      opt.get_int_list("procs", {1, 2, 4, 8, 16, 32});
  const earth::MachineConfig machine = bench::machine_from_options(opt);

  core::SequentialOptions sopt;
  sopt.sweeps = sweeps;
  sopt.machine = machine;
  sopt.collect_results = false;
  const core::RunResult seq = core::run_sequential_kernel(kernel, sopt);
  const double seq_s = bench::to_seconds(seq.total_cycles);
  std::printf("euler %s: %s nodes, %s edges, %u sweeps; sequential %.2f s\n",
              label, fmt_group(m.num_nodes).c_str(),
              fmt_group(static_cast<long long>(m.num_edges())).c_str(),
              sweeps, seq_s);

  std::vector<bench::Series> series;
  std::vector<std::pair<std::string, double>> imbalance;
  std::vector<std::uint32_t> procs_u32;
  for (const Strategy& s : kStrategies) {
    bench::Series line;
    line.name = s.name;
    for (const auto procs : procs_list) {
      const auto P = static_cast<std::uint32_t>(procs);
      core::RotationOptions ropt;
      ropt.num_procs = P;
      ropt.k = s.k;
      ropt.distribution = s.dist;
      ropt.sweeps = sweeps;
      ropt.machine = machine;
      ropt.collect_results = false;
      const core::RunResult r = core::run_rotation_engine(kernel, ropt);
      if (opt.get_bool("stats", false))
        std::printf("  %s P=%-3u miss=%.3f util=%.2f msgs=%llu\n", s.name, P,
                    r.machine.cache_miss_rate(), r.machine.eu_utilization(),
                    static_cast<unsigned long long>(r.machine.total_msgs()));
      line.points.push_back(
          {P, bench::to_seconds(r.total_cycles),
           seq_s / bench::to_seconds(r.total_cycles)});
      if (P == 32)
        imbalance.emplace_back(s.name, bench::phase_imbalance(r));
    }
    series.push_back(std::move(line));
  }
  procs_u32.reserve(procs_list.size());
  for (auto p : procs_list) procs_u32.push_back(static_cast<std::uint32_t>(p));

  const std::string title = std::string("Figure 6 (euler ") + label + ")";
  bench::print_figure(title, seq_s, procs_u32, series);
  bench::maybe_write_figure_json(opt, title, seq_s, procs_u32, series);
  if (procs_u32.size() >= 2)
    bench::print_relative(title, 2, procs_u32.back(), series);

  if (opt.get_bool("imbalance", false)) {
    Table t(title + " — phase load imbalance at P=32 (CoV of iterations"
                    " per phase)");
    t.set_header({"strategy", "CoV"});
    for (const auto& [name, cov] : imbalance)
      t.add_row({name, fmt_f(cov, 3)});
    t.print(std::cout);
  }
}

}  // namespace
}  // namespace earthred

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const std::string dataset = opt.get("dataset", "both");
  if (dataset == "small" || dataset == "both")
    run_dataset("2K", mesh::euler_mesh_small(), opt);
  if (dataset == "large" || dataset == "both")
    run_dataset("10K", mesh::euler_mesh_large(), opt);
  return 0;
}
