// Ablation: remote-buffer deduplication.
//
// The paper's LightInspector allocates one buffer location per deferred
// *reference* (Figure 3). Sharing one slot per distinct deferred *element*
// shrinks the buffer and the second loop at the cost of an inspector-side
// hash lookup. This bench quantifies both effects on the paper's kernels.
//
// Flags: --sweeps=N (default 50), --procs=P (default 16).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/reduction_engine.hpp"
#include "inspector/light_inspector.hpp"
#include "kernels/euler.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"

namespace earthred {
namespace {

void run_one(const char* label, const core::PhasedKernel& kernel,
             const Options& opt, Table& t) {
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 50));
  const auto P = static_cast<std::uint32_t>(opt.get_int("procs", 16));
  for (const bool dedup : {false, true}) {
    core::RotationOptions ropt;
    ropt.num_procs = P;
    ropt.k = 2;
    ropt.sweeps = sweeps;
    ropt.machine = bench::machine_from_options(opt);
    ropt.inspector.dedup_buffers = dedup;
    ropt.collect_results = false;
    const core::RunResult r = core::run_rotation_engine(kernel, ropt);
    t.add_row({label, dedup ? "dedup" : "per-reference",
               fmt_f(bench::to_seconds(r.total_cycles), 3),
               fmt_f(r.machine.cache_miss_rate(), 3),
               fmt_f(r.machine.eu_utilization(), 2)});
  }
}

}  // namespace
}  // namespace earthred

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  Table t("Ablation — remote-buffer allocation policy (k=2, cyclic)");
  t.set_header({"kernel", "policy", "time (s)", "miss rate", "EU util"});
  {
    const kernels::EulerKernel euler(mesh::euler_mesh_small());
    run_one("euler 2K", euler, opt, t);
  }
  {
    const kernels::MoldynKernel moldyn(mesh::moldyn_small());
    run_one("moldyn 2K", moldyn, opt, t);
  }
  t.print(std::cout);
  return 0;
}
