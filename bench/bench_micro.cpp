// Substrate microbenchmarks (google-benchmark): host-side throughput of
// the building blocks the figure benches lean on — the cache model, the
// rotation-ownership algebra, the LightInspector (full and incremental),
// the classic schedule build, and EARTH machine event processing.
#include <benchmark/benchmark.h>

#include <vector>

#include "earth/cache.hpp"
#include "earth/machine.hpp"
#include "inspector/classic_inspector.hpp"
#include "inspector/light_inspector.hpp"
#include "inspector/rotation.hpp"
#include "mesh/generators.hpp"
#include "support/prng.hpp"

namespace earthred {
namespace {

void BM_CacheAccess(benchmark::State& state) {
  earth::CacheConfig cc;
  earth::CacheModel cache(cc);
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.below(1 << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addrs[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_RotationOwnership(benchmark::State& state) {
  const inspector::RotationSchedule sched(100000, 32, 2);
  std::uint32_t e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched.owning_phase(e % 32, sched.portion_of(e % 100000)));
    ++e;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RotationOwnership);

inspector::IterationRefs random_refs(std::uint32_t n_elems,
                                     std::uint32_t n_iters,
                                     std::uint64_t seed) {
  Xoshiro256 rng(seed);
  inspector::IterationRefs refs;
  refs.refs.resize(2);
  for (std::uint32_t i = 0; i < n_iters; ++i) {
    refs.global_iter.push_back(i);
    refs.refs[0].push_back(static_cast<std::uint32_t>(rng.below(n_elems)));
    refs.refs[1].push_back(static_cast<std::uint32_t>(rng.below(n_elems)));
  }
  return refs;
}

void BM_LightInspectorFull(benchmark::State& state) {
  const auto n_iters = static_cast<std::uint32_t>(state.range(0));
  const inspector::RotationSchedule sched(10000, 16, 2);
  const auto refs = random_refs(10000, n_iters, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inspector::run_light_inspector(sched, 3, refs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * n_iters);
}
BENCHMARK(BM_LightInspectorFull)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LightInspectorIncremental(benchmark::State& state) {
  const std::uint32_t n_iters = 100000;
  const auto changed_count = static_cast<std::uint32_t>(state.range(0));
  const inspector::RotationSchedule sched(10000, 16, 2);
  auto refs = random_refs(10000, n_iters, 7);
  const auto base = inspector::run_light_inspector(sched, 3, refs);
  Xoshiro256 rng(8);
  std::vector<std::uint32_t> changed;
  for (std::uint32_t i = 0; i < changed_count; ++i) {
    const auto c = static_cast<std::uint32_t>(rng.below(n_iters));
    changed.push_back(c);
    refs.refs[0][c] = static_cast<std::uint32_t>(rng.below(10000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(inspector::update_light_inspector(
        sched, 3, refs, base, changed));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * changed_count);
}
BENCHMARK(BM_LightInspectorIncremental)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ClassicScheduleBuild(benchmark::State& state) {
  const auto n_iters = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t procs = 16;
  std::vector<inspector::IterationRefs> per_proc;
  per_proc.reserve(procs);
  for (std::uint32_t p = 0; p < procs; ++p)
    per_proc.push_back(random_refs(10000, n_iters / procs, p + 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inspector::build_classic_schedule(10000, procs, per_proc));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * n_iters);
}
BENCHMARK(BM_ClassicScheduleBuild)->Arg(16000)->Arg(160000);

void BM_MachineSyncRing(benchmark::State& state) {
  // Host cost of simulating one sync hop around a 4-node ring.
  for (auto _ : state) {
    earth::MachineConfig cfg;
    cfg.num_nodes = 4;
    earth::EarthMachine m(cfg);
    std::vector<earth::FiberId> ring;
    ring.reserve(4);
    int hops = 0;
    for (std::uint32_t n = 0; n < 4; ++n) {
      ring.push_back(
          m.add_fiber(n, 1, [&, n](earth::FiberContext& ctx) {
            if (++hops < 400) ctx.sync(ring[(n + 1) % 4]);
          }));
    }
    m.credit(ring[0]);
    benchmark::DoNotOptimize(m.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          400);
}
BENCHMARK(BM_MachineSyncRing);

void BM_GeometricMeshGen(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mesh::make_geometric_mesh({2800, 17377, 42}));
  }
}
BENCHMARK(BM_GeometricMeshGen);

}  // namespace
}  // namespace earthred

BENCHMARK_MAIN();
