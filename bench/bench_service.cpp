// bench_service: throughput and setup-cost profile of the reduction
// service (src/service/) — the compile-once/run-many payoff of the
// paper's LightInspector made measurable.
//
// Part 1 (setup cost): for each (mesh, P, k) configuration, time the cold
// PlanCache path (distribution + per-processor inspector build) against
// the warm path (cache hit with a precomputed mesh fingerprint). The
// headline number is the cold/warm ratio — warm submissions skip the
// rebuild entirely, so the ratio is expected to be >= 10x.
//
// Part 2 (throughput): drive a JobScheduler worker pool with a stream of
// jobs cycling over the configurations, once with the cache disabled
// (byte budget 0: every job rebuilds its plan) and once enabled. Reports
// jobs/second and the ServiceStats snapshot for each mode.
//
// Flags: --jobs=N (default 48), --workers=W (default 4), --sweeps=S
//        (default 4), --reps=R warm-lookup repetitions (default 32),
//        --json=<path> (JSONL record with the measured numbers).
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "service/job_scheduler.hpp"
#include "support/options.hpp"

namespace earthred {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Config {
  std::string name;
  std::shared_ptr<const core::PhasedKernel> kernel;
  std::uint64_t fingerprint = 0;
  core::PlanOptions plan{};
};

std::vector<Config> make_configs() {
  std::vector<Config> configs;
  const auto add = [&](std::string name,
                       std::shared_ptr<const core::PhasedKernel> kernel,
                       std::uint32_t P, std::uint32_t k) {
    Config c;
    c.name = std::move(name) + "/P" + std::to_string(P) + "k" +
             std::to_string(k);
    c.fingerprint = service::kernel_fingerprint(*kernel);
    c.kernel = std::move(kernel);
    c.plan.num_procs = P;
    c.plan.k = k;
    configs.push_back(std::move(c));
  };
  const auto euler = std::make_shared<kernels::EulerKernel>(
      mesh::make_geometric_mesh({2000, 12000, 7}));
  const auto moldyn = std::make_shared<kernels::MoldynKernel>(
      mesh::make_moldyn_lattice({4, 2000, 0.03, 9}));
  const auto fig1 = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({1500, 9000, 11})));
  add("euler2k", euler, 4, 2);
  add("euler2k", euler, 8, 2);
  add("moldyn2k", moldyn, 4, 2);
  add("moldyn2k", moldyn, 4, 4);
  add("fig1", fig1, 4, 2);
  add("fig1", fig1, 8, 1);
  return configs;
}

struct ThroughputResult {
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  service::ServiceStats stats;
};

ThroughputResult run_throughput(const std::vector<Config>& configs,
                                std::uint32_t jobs, std::uint32_t workers,
                                std::uint32_t sweeps, bool cache_on) {
  service::JobScheduler::Config cfg;
  cfg.workers = workers;
  cfg.queue_capacity = jobs;  // admission sized to the run: nothing rejected
  cfg.cache.byte_budget = cache_on ? (256ull << 20) : 0;
  service::JobScheduler sched(cfg);

  std::vector<service::JobRequest> reqs;
  reqs.reserve(jobs);
  for (std::uint32_t j = 0; j < jobs; ++j) {
    const Config& c = configs[j % configs.size()];
    service::JobRequest r;
    r.kernel = c.kernel;
    r.name = c.name;
    r.plan = c.plan;
    r.sweeps = sweeps;
    r.fingerprint = c.fingerprint;
    reqs.push_back(std::move(r));
  }

  const auto t0 = Clock::now();
  const std::vector<service::JobHandle> handles =
      sched.submit_batch(std::move(reqs));
  ThroughputResult out;
  for (const service::JobHandle& h : handles) {
    const service::JobOutcome& o = h.wait();
    if (o.state == service::JobState::Done) ++out.done;
    else if (o.state == service::JobState::Failed) ++out.failed;
    else ++out.rejected;
  }
  out.wall_seconds = seconds_since(t0);
  out.jobs_per_second =
      out.wall_seconds > 0 ? static_cast<double>(jobs) / out.wall_seconds
                           : 0.0;
  out.stats = sched.stats();
  return out;
}

int run(const Options& opt) {
  const auto jobs = static_cast<std::uint32_t>(opt.get_int("jobs", 48));
  const auto workers = static_cast<std::uint32_t>(opt.get_int("workers", 4));
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 4));
  const auto reps = static_cast<std::uint32_t>(opt.get_int("reps", 32));

  const std::vector<Config> configs = make_configs();

  // ---- Part 1: cold vs warm plan acquisition --------------------------
  service::PlanCache cache;
  Table t("service plan setup: cold (build) vs warm (cache hit)");
  t.set_header({"config", "cold ms", "warm ms", "ratio"});
  double cold_sum = 0.0, warm_sum = 0.0;
  for (const Config& c : configs) {
    const auto t0 = Clock::now();
    (void)cache.lookup_or_build(*c.kernel, c.plan, c.fingerprint);
    const double cold = seconds_since(t0);

    const auto t1 = Clock::now();
    for (std::uint32_t i = 0; i < reps; ++i)
      (void)cache.lookup_or_build(*c.kernel, c.plan, c.fingerprint);
    const double warm = seconds_since(t1) / reps;

    cold_sum += cold;
    warm_sum += warm;
    t.add_row({c.name, fmt_f(cold * 1e3, 3), fmt_f(warm * 1e3, 4),
               warm > 0 ? fmt_f(cold / warm, 1) + "x" : "-"});
  }
  t.print(std::cout);
  const double ratio = warm_sum > 0 ? cold_sum / warm_sum : 0.0;
  std::printf(
      "warm (cache-hit) setup skips distribution + inspector rebuild: "
      "%.1fx cheaper than cold overall %s\n",
      ratio, ratio >= 10.0 ? "(>= 10x: PASS)" : "(< 10x: FAIL)");

  // ---- Part 2: throughput with cache off/on ---------------------------
  const ThroughputResult off =
      run_throughput(configs, jobs, workers, sweeps, false);
  const ThroughputResult on =
      run_throughput(configs, jobs, workers, sweeps, true);

  Table tp("service throughput (" + std::to_string(jobs) + " jobs, " +
           std::to_string(workers) + " workers, " +
           std::to_string(sweeps) + " sweeps/job)");
  tp.set_header({"mode", "wall s", "jobs/s", "done", "failed", "rejected",
                 "cache hit rate"});
  const auto row = [&](const char* name, const ThroughputResult& r) {
    tp.add_row({name, fmt_f(r.wall_seconds, 3), fmt_f(r.jobs_per_second, 1),
                std::to_string(r.done), std::to_string(r.failed),
                std::to_string(r.rejected),
                fmt_f(r.stats.cache.hit_rate(), 3)});
  };
  row("cache off (cold start every job)", off);
  row("cache on", on);
  tp.print(std::cout);
  on.stats.print(std::cout, "service stats (cache on)");

  if (opt.has("json")) {
    JsonWriter w;
    w.field("bench", "service")
        .field("jobs", static_cast<std::uint64_t>(jobs))
        .field("workers", static_cast<std::uint64_t>(workers))
        .field("sweeps", static_cast<std::uint64_t>(sweeps))
        .field("cold_setup_ms_total", cold_sum * 1e3)
        .field("warm_setup_ms_total", warm_sum * 1e3)
        .field("cold_over_warm_ratio", ratio)
        .field("throughput_cache_off_jobs_per_s", off.jobs_per_second)
        .field("throughput_cache_on_jobs_per_s", on.jobs_per_second)
        .field("cache_hit_rate", on.stats.cache.hit_rate())
        .field("p50_latency_s", on.stats.p50_latency)
        .field("p95_latency_s", on.stats.p95_latency)
        .field("p99_latency_s", on.stats.p99_latency);
    append_json_line(opt.get("json"), w.str());
    std::printf("appended JSON record to %s\n", opt.get("json").c_str());
  }
  return ratio >= 10.0 && off.failed == 0 && on.failed == 0 &&
                 off.rejected == 0 && on.rejected == 0
             ? 0
             : 1;
}

}  // namespace
}  // namespace earthred

int main(int argc, char** argv) {
  const earthred::Options opt(argc, argv);
  return earthred::run(opt);
}
