// bench_service: throughput and setup-cost profile of the reduction
// service (src/service/) — the compile-once/run-many payoff of the
// paper's LightInspector made measurable.
//
// Part 1 (setup cost): for each (mesh, P, k) configuration, time the cold
// PlanCache path (distribution + per-processor inspector build) against
// the warm path (cache hit with a precomputed mesh fingerprint). The
// headline number is the cold/warm ratio — warm submissions skip the
// rebuild entirely, so the ratio is expected to be >= 10x.
//
// Part 2 (throughput): drive a JobScheduler worker pool with a stream of
// jobs cycling over the configurations, once with the cache disabled
// (byte budget 0: every job rebuilds its plan) and once enabled. Reports
// jobs/second and the ServiceStats snapshot for each mode.
//
// Part 3 (--net): the same scheduler fronted by a ServeLoop on a
// loopback socket, driven by concurrent net::Client threads — measures
// the wire path (framing, checksums, poll loop, result reaping) end to
// end. With --net-faults each client connection is wrapped in a
// FaultyStream (seeded drops / bit flips / short reads), so the number
// also covers the retry/reconnect machinery; the gate is then
// accounting, not speed: every submission must terminate with a result
// or a coded refusal, and the server must drain clean.
//
// Part 4 (--shards=N): N in-process shard ServeLoops fronted by a
// ShardRouter on loopback — the multi-process fleet topology collapsed
// into one benchmarkable process. Mixed job lines spread over several
// meshes exercise the rendezvous partitioner; the gates are accounting
// (submits == results + coded rejects at the router) and zero reroutes
// on a healthy fleet, the headline is routed jobs/second and the
// per-shard forward spread.
//
// Flags: --jobs=N (default 48), --workers=W (default 4), --sweeps=S
//        (default 4), --reps=R warm-lookup repetitions (default 32),
//        --net (run part 3), --net-clients=C (default 4), --net-faults,
//        --shards=N (run part 4 with N loopback shards),
//        --small (CI-sized: shrink counts, skip the >=10x ratio gate),
//        --json=<path> (JSONL record with the measured numbers).
#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "net/client.hpp"
#include "net/stream.hpp"
#include "service/job_builder.hpp"
#include "service/job_scheduler.hpp"
#include "service/serve_loop.hpp"
#include "shard/endpoint_pool.hpp"
#include "shard/shard_map.hpp"
#include "shard/shard_router.hpp"
#include "support/cpu_features.hpp"
#include "support/options.hpp"

namespace earthred {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Config {
  std::string name;
  std::shared_ptr<const core::PhasedKernel> kernel;
  std::uint64_t fingerprint = 0;
  core::PlanOptions plan{};
};

std::vector<Config> make_configs() {
  std::vector<Config> configs;
  const auto add = [&](std::string name,
                       std::shared_ptr<const core::PhasedKernel> kernel,
                       std::uint32_t P, std::uint32_t k) {
    Config c;
    c.name = std::move(name) + "/P" + std::to_string(P) + "k" +
             std::to_string(k);
    c.fingerprint = service::kernel_fingerprint(*kernel);
    c.kernel = std::move(kernel);
    c.plan.num_procs = P;
    c.plan.k = k;
    configs.push_back(std::move(c));
  };
  const auto euler = std::make_shared<kernels::EulerKernel>(
      mesh::make_geometric_mesh({2000, 12000, 7}));
  const auto moldyn = std::make_shared<kernels::MoldynKernel>(
      mesh::make_moldyn_lattice({4, 2000, 0.03, 9}));
  const auto fig1 = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({1500, 9000, 11})));
  add("euler2k", euler, 4, 2);
  add("euler2k", euler, 8, 2);
  add("moldyn2k", moldyn, 4, 2);
  add("moldyn2k", moldyn, 4, 4);
  add("fig1", fig1, 4, 2);
  add("fig1", fig1, 8, 1);
  return configs;
}

struct ThroughputResult {
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  service::ServiceStats stats;
};

ThroughputResult run_throughput(const std::vector<Config>& configs,
                                std::uint32_t jobs, std::uint32_t workers,
                                std::uint32_t sweeps, bool cache_on) {
  service::JobScheduler::Config cfg;
  cfg.workers = workers;
  cfg.queue_capacity = jobs;  // admission sized to the run: nothing rejected
  cfg.cache.byte_budget = cache_on ? (256ull << 20) : 0;
  service::JobScheduler sched(cfg);

  std::vector<service::JobRequest> reqs;
  reqs.reserve(jobs);
  for (std::uint32_t j = 0; j < jobs; ++j) {
    const Config& c = configs[j % configs.size()];
    service::JobRequest r;
    r.kernel = c.kernel;
    r.name = c.name;
    r.plan = c.plan;
    r.sweeps = sweeps;
    r.fingerprint = c.fingerprint;
    reqs.push_back(std::move(r));
  }

  const auto t0 = Clock::now();
  const std::vector<service::JobHandle> handles =
      sched.submit_batch(std::move(reqs));
  ThroughputResult out;
  for (const service::JobHandle& h : handles) {
    const service::JobOutcome& o = h.wait();
    if (o.state == service::JobState::Done) ++out.done;
    else if (o.state == service::JobState::Failed) ++out.failed;
    else ++out.rejected;
  }
  out.wall_seconds = seconds_since(t0);
  out.jobs_per_second =
      out.wall_seconds > 0 ? static_cast<double>(jobs) / out.wall_seconds
                           : 0.0;
  out.stats = sched.stats();
  return out;
}

struct NetResult {
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  std::uint64_t done = 0;
  std::uint64_t coded = 0;  ///< terminated with an E-NET-*/E-JOB-* code
  net::ClientStats client;  ///< summed across client threads
  service::ServeStats serve;
  bool started = false;
};

NetResult run_net(std::uint32_t jobs, std::uint32_t workers,
                  std::uint32_t clients, std::uint32_t sweeps,
                  bool faults) {
  NetResult out;
  service::JobScheduler::Config cfg;
  cfg.workers = workers;
  cfg.queue_capacity = jobs + 16;
  cfg.cache.byte_budget = 256ull << 20;
  service::JobScheduler sched(cfg);

  service::JobLimits limits;
  limits.allow_file_io = false;  // networked submissions: no file refs
  const auto builder = std::make_shared<service::JobBuilder>(limits);
  const auto lineno = std::make_shared<std::size_t>(0);

  service::ServeConfig scfg;
  scfg.max_inflight = jobs + 16;
  if (faults) {
    // Dropped chunks leave frames incomplete; a short read timeout turns
    // them into fast coded rejects instead of 10s stalls per incident.
    scfg.read_timeout_ms = 500;
    scfg.write_timeout_ms = 1000;
  }
  service::ServeLoop loop(
      sched,
      [builder, lineno](std::string_view line) {
        return builder->build(line, ++*lineno);
      },
      scfg);
  std::string error;
  if (!loop.start(&error)) {
    std::fprintf(stderr, "bench_service: serve start failed: %s\n",
                 error.c_str());
    return out;
  }
  out.started = true;

  // One small job line reused throughout: the first submission builds the
  // kernel + plan, the rest hit the plan cache — so the measurement is
  // dominated by the wire path, which is the point.
  const std::string job_line =
      "kernel=fig1 nodes=1500 edges=9000 seed=11 procs=4 k=2 sweeps=" +
      std::to_string(sweeps) + " name=net";

  std::atomic<std::uint64_t> done{0};
  std::atomic<std::uint64_t> coded{0};
  std::mutex agg_mutex;
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::ClientConfig ccfg;
      ccfg.port = loop.port();
      // A dropped chunk stalls the attempt until this expires; keep it
      // short under faults so a retry happens in seconds, not tens.
      ccfg.request_timeout_ms = faults ? 2000 : 10000;
      ccfg.max_attempts = 6;
      ccfg.backoff_base_ms = 2;
      ccfg.backoff_cap_ms = 50;
      ccfg.jitter_seed = 0x6a11ULL + c;
      // Under injected faults the breaker must not fast-fail the run;
      // persistence is what is being measured.
      ccfg.breaker_threshold = 1000;
      if (faults) {
        ccfg.wrap_stream = [c](std::unique_ptr<net::Stream> s)
            -> std::unique_ptr<net::Stream> {
          net::ByteFaultConfig f;
          f.seed = 0xbe5eULL + 0x9e3779b9ULL * c;
          f.drop = 0.02;
          f.corrupt = 0.02;
          f.short_read = 0.10;
          return std::make_unique<net::FaultyStream>(std::move(s), f);
        };
      }
      net::Client client(ccfg);
      const std::uint32_t per =
          jobs / clients + (c < jobs % clients ? 1u : 0u);
      for (std::uint32_t j = 0; j < per; ++j) {
        const net::Client::Reply r = client.submit(job_line);
        if (r.ok() &&
            r.result.state ==
                static_cast<std::uint32_t>(service::JobState::Done)) {
          done.fetch_add(1);
        } else {
          coded.fetch_add(1);
        }
      }
      const std::lock_guard<std::mutex> lk(agg_mutex);
      const net::ClientStats& s = client.stats();
      out.client.calls += s.calls;
      out.client.attempts += s.attempts;
      out.client.retries += s.retries;
      out.client.reconnects += s.reconnects;
      out.client.transport_failures += s.transport_failures;
      out.client.breaker_fast_fails += s.breaker_fast_fails;
      out.client.breaker_trips += s.breaker_trips;
      out.client.breaker_half_open_probes += s.breaker_half_open_probes;
      out.client.breaker_closes += s.breaker_closes;
      out.client.backoff_sleeps += s.backoff_sleeps;
      out.client.backoff_ms_total += s.backoff_ms_total;
    });
  }
  for (std::thread& t : threads) t.join();
  out.wall_seconds = seconds_since(t0);
  out.done = done.load();
  out.coded = coded.load();
  out.jobs_per_second =
      out.wall_seconds > 0 ? static_cast<double>(jobs) / out.wall_seconds
                           : 0.0;
  loop.request_drain();
  loop.wait();
  sched.drain();
  out.serve = loop.stats();
  return out;
}

// ---- Part 4: multi-shard loopback fleet ---------------------------------

/// One in-process backend shard (scheduler + ServeLoop), wired the way
/// `earthred serve --listen` wires them.
struct BenchShard {
  service::JobScheduler sched;
  std::shared_ptr<service::JobBuilder> builder;
  std::unique_ptr<service::ServeLoop> loop;

  explicit BenchShard(std::uint32_t workers, std::uint32_t inflight)
      : sched([&] {
          service::JobScheduler::Config cfg;
          cfg.workers = workers;
          cfg.queue_capacity = inflight;
          cfg.cache.byte_budget = 256ull << 20;
          return cfg;
        }()) {
    service::JobLimits limits;
    limits.allow_file_io = false;
    builder = std::make_shared<service::JobBuilder>(limits);
    service::ServeConfig scfg;
    scfg.max_inflight = inflight;
    loop = std::make_unique<service::ServeLoop>(
        sched,
        [b = builder](std::string_view line) { return b->build(line, 0); },
        scfg);
  }
};

struct ShardBenchResult {
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  std::uint64_t done = 0;
  std::uint64_t coded = 0;
  std::uint64_t forwards_min = 0, forwards_max = 0;
  shard::RouterStats router;
  std::vector<shard::ShardSnapshot> shards;
  bool started = false;
};

ShardBenchResult run_sharded(std::uint32_t jobs, std::uint32_t workers,
                             std::uint32_t nshards, std::uint32_t clients,
                             std::uint32_t sweeps) {
  ShardBenchResult out;
  std::vector<std::unique_ptr<BenchShard>> shards;
  std::vector<shard::ShardEndpoint> eps;
  for (std::uint32_t i = 0; i < nshards; ++i) {
    shards.push_back(std::make_unique<BenchShard>(workers, jobs + 16));
    std::string error;
    if (!shards.back()->loop->start(&error)) {
      std::fprintf(stderr, "bench_service: shard start failed: %s\n",
                   error.c_str());
      return out;
    }
    eps.push_back({"shard-" + std::to_string(i), "127.0.0.1",
                   shards.back()->loop->port()});
  }
  shard::RouterConfig rcfg;
  rcfg.max_connections = clients + 8;
  rcfg.pool.max_inflight_per_shard = jobs + 16;
  shard::ShardRouter router{shard::ShardMap(eps), rcfg};
  std::string error;
  if (!router.start(&error)) {
    std::fprintf(stderr, "bench_service: router start failed: %s\n",
                 error.c_str());
    return out;
  }
  out.started = true;

  // Mixed lines over several meshes: distinct content keys, so the
  // rendezvous partitioner actually spreads work, and each shard's
  // PlanCache warms for its own subset only.
  std::vector<std::string> lines;
  for (int i = 0; i < 6; ++i)
    lines.push_back("kernel=" + std::string(i % 2 ? "euler" : "fig1") +
                    " nodes=" + std::to_string(1000 + 150 * i) +
                    " edges=" + std::to_string(6000 + 500 * i) +
                    " seed=11 procs=4 k=2 sweeps=" +
                    std::to_string(sweeps));

  std::atomic<std::uint64_t> done{0};
  std::atomic<std::uint64_t> coded{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::ClientConfig ccfg;
      ccfg.port = router.port();
      ccfg.jitter_seed = 0x6a11ULL + c;
      net::Client client(ccfg);
      const std::uint32_t per =
          jobs / clients + (c < jobs % clients ? 1u : 0u);
      for (std::uint32_t j = 0; j < per; ++j) {
        const net::Client::Reply r =
            client.submit(lines[(c + j) % lines.size()]);
        if (r.ok() &&
            r.result.state ==
                static_cast<std::uint32_t>(service::JobState::Done))
          done.fetch_add(1);
        else
          coded.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out.wall_seconds = seconds_since(t0);
  out.done = done.load();
  out.coded = coded.load();
  out.jobs_per_second =
      out.wall_seconds > 0 ? static_cast<double>(jobs) / out.wall_seconds
                           : 0.0;

  // Quiesce router-last; final counters are exact after wait().
  router.drain_fleet();
  router.wait();
  for (auto& s : shards) {
    s->loop->wait();
    s->sched.drain();
  }
  out.router = router.stats();
  out.shards = router.pool().snapshot();
  for (std::size_t i = 0; i < out.shards.size(); ++i) {
    const std::uint64_t f = out.shards[i].forwards;
    out.forwards_min = i == 0 ? f : std::min(out.forwards_min, f);
    out.forwards_max = std::max(out.forwards_max, f);
  }
  return out;
}

/// Prints part 4; true iff routing terminated every job, nothing was
/// rerouted on a healthy fleet, and the router accounting identity holds.
bool report_sharded(std::uint32_t jobs, std::uint32_t nshards,
                    const ShardBenchResult& r) {
  if (!r.started) return false;
  Table t("sharded fleet (" + std::to_string(nshards) +
          " loopback shards + router)");
  t.set_header({"metric", "value"});
  t.add_row({"wall s", fmt_f(r.wall_seconds, 3)});
  t.add_row({"routed jobs/s", fmt_f(r.jobs_per_second, 1)});
  t.add_row({"done", std::to_string(r.done)});
  t.add_row({"coded refusals", std::to_string(r.coded)});
  t.add_row({"reroutes", std::to_string(r.router.reroutes)});
  t.add_row({"forward spread (min/max per shard)",
             std::to_string(r.forwards_min) + " / " +
                 std::to_string(r.forwards_max)});
  for (const shard::ShardSnapshot& s : r.shards)
    t.add_row({"  " + s.name + " forwards / p95 ms",
               std::to_string(s.forwards) + " / " + fmt_f(s.p95_ms, 2)});
  t.print(std::cout);
  const bool accounted =
      r.done + r.coded == jobs &&
      r.router.submits == r.router.results_sent + r.router.submit_rejects;
  const bool no_reroutes = r.router.reroutes == 0;
  std::printf(
      "shard accounting: %llu done + %llu coded = %u submitted, router "
      "%llu = %llu + %llu %s; %llu reroute(s) on a healthy fleet %s\n",
      static_cast<unsigned long long>(r.done),
      static_cast<unsigned long long>(r.coded), jobs,
      static_cast<unsigned long long>(r.router.submits),
      static_cast<unsigned long long>(r.router.results_sent),
      static_cast<unsigned long long>(r.router.submit_rejects),
      accounted ? "(PASS)" : "(FAIL)",
      static_cast<unsigned long long>(r.router.reroutes),
      no_reroutes ? "(PASS)" : "(FAIL)");
  return accounted && no_reroutes;
}

/// Prints one net mode's table + summary; true iff the accounting gate
/// holds (every job terminated, server drained clean).
bool report_net(const char* title, std::uint32_t jobs, const NetResult& r) {
  if (!r.started) return false;
  Table t(title);
  t.set_header({"metric", "value"});
  t.add_row({"wall s", fmt_f(r.wall_seconds, 3)});
  t.add_row({"jobs/s", fmt_f(r.jobs_per_second, 1)});
  t.add_row({"done", std::to_string(r.done)});
  t.add_row({"coded refusals", std::to_string(r.coded)});
  t.add_row({"client attempts", std::to_string(r.client.attempts)});
  t.add_row({"client retries", std::to_string(r.client.retries)});
  t.add_row({"client reconnects", std::to_string(r.client.reconnects)});
  t.add_row({"transport failures",
             std::to_string(r.client.transport_failures)});
  t.add_row({"backoff sleeps / ms",
             std::to_string(r.client.backoff_sleeps) + " / " +
                 std::to_string(r.client.backoff_ms_total)});
  t.add_row({"breaker trips/probes/closes",
             std::to_string(r.client.breaker_trips) + " / " +
                 std::to_string(r.client.breaker_half_open_probes) +
                 " / " + std::to_string(r.client.breaker_closes)});
  t.add_row({"server frames in/out",
             std::to_string(r.serve.frames_in) + " / " +
                 std::to_string(r.serve.frames_out)});
  t.add_row({"server bad frames", std::to_string(r.serve.bad_frames)});
  t.add_row({"server sheds (busy/drain)",
             std::to_string(r.serve.shed_busy) + " / " +
                 std::to_string(r.serve.shed_draining)});
  t.add_row({"server read/write timeouts",
             std::to_string(r.serve.read_timeouts) + " / " +
                 std::to_string(r.serve.write_timeouts)});
  t.print(std::cout);
  const bool accounted = r.done + r.coded == jobs;
  const bool drained = r.serve.open_connections() == 0;
  std::printf(
      "net accounting: %llu done + %llu coded = %u submitted %s; "
      "%llu connection(s) left open %s\n",
      static_cast<unsigned long long>(r.done),
      static_cast<unsigned long long>(r.coded), jobs,
      accounted ? "(PASS)" : "(FAIL)",
      static_cast<unsigned long long>(r.serve.open_connections()),
      drained ? "(PASS)" : "(FAIL)");
  return accounted && drained;
}

int run(const Options& opt) {
  const bool small = opt.get_bool("small", false);
  const auto jobs =
      static_cast<std::uint32_t>(opt.get_int("jobs", small ? 16 : 48));
  const auto workers =
      static_cast<std::uint32_t>(opt.get_int("workers", small ? 2 : 4));
  const auto sweeps =
      static_cast<std::uint32_t>(opt.get_int("sweeps", small ? 2 : 4));
  const auto reps =
      static_cast<std::uint32_t>(opt.get_int("reps", small ? 8 : 32));

  const std::vector<Config> configs = make_configs();

  // ---- Part 1: cold vs warm plan acquisition --------------------------
  service::PlanCache cache;
  Table t("service plan setup: cold (build) vs warm (cache hit)");
  t.set_header({"config", "cold ms", "warm ms", "ratio"});
  double cold_sum = 0.0, warm_sum = 0.0;
  for (const Config& c : configs) {
    const auto t0 = Clock::now();
    (void)cache.lookup_or_build(*c.kernel, c.plan, c.fingerprint);
    const double cold = seconds_since(t0);

    const auto t1 = Clock::now();
    for (std::uint32_t i = 0; i < reps; ++i)
      (void)cache.lookup_or_build(*c.kernel, c.plan, c.fingerprint);
    const double warm = seconds_since(t1) / reps;

    cold_sum += cold;
    warm_sum += warm;
    t.add_row({c.name, fmt_f(cold * 1e3, 3), fmt_f(warm * 1e3, 4),
               warm > 0 ? fmt_f(cold / warm, 1) + "x" : "-"});
  }
  t.print(std::cout);
  const double ratio = warm_sum > 0 ? cold_sum / warm_sum : 0.0;
  std::printf(
      "warm (cache-hit) setup skips distribution + inspector rebuild: "
      "%.1fx cheaper than cold overall %s\n",
      ratio, ratio >= 10.0 ? "(>= 10x: PASS)" : "(< 10x: FAIL)");

  // ---- Part 2: throughput with cache off/on ---------------------------
  const ThroughputResult off =
      run_throughput(configs, jobs, workers, sweeps, false);
  const ThroughputResult on =
      run_throughput(configs, jobs, workers, sweeps, true);

  Table tp("service throughput (" + std::to_string(jobs) + " jobs, " +
           std::to_string(workers) + " workers, " +
           std::to_string(sweeps) + " sweeps/job)");
  tp.set_header({"mode", "wall s", "jobs/s", "done", "failed", "rejected",
                 "cache hit rate"});
  const auto row = [&](const char* name, const ThroughputResult& r) {
    tp.add_row({name, fmt_f(r.wall_seconds, 3), fmt_f(r.jobs_per_second, 1),
                std::to_string(r.done), std::to_string(r.failed),
                std::to_string(r.rejected),
                fmt_f(r.stats.cache.hit_rate(), 3)});
  };
  row("cache off (cold start every job)", off);
  row("cache on", on);
  tp.print(std::cout);
  on.stats.print(std::cout, "service stats (cache on)");

  // ---- Part 3: networked front-end (--net) ----------------------------
  bool net_ok = true;
  NetResult net;
  NetResult net_chaos;
  const bool run_net_part = opt.get_bool("net", false);
  const bool net_faults = opt.get_bool("net-faults", false);
  const auto clients = static_cast<std::uint32_t>(
      opt.get_int("net-clients", small ? 2 : 4));
  if (run_net_part) {
    net = run_net(jobs, workers, clients, sweeps, false);
    net_ok = report_net(
        ("networked service (" + std::to_string(clients) +
         " clients, clean wire)")
            .c_str(),
        jobs, net);
    if (net_faults) {
      net_chaos = run_net(jobs, workers, clients, sweeps, true);
      net_ok = report_net(
          ("networked service (" + std::to_string(clients) +
           " clients, injected byte faults)")
              .c_str(),
          jobs, net_chaos) &&
               net_ok;
    }
  }

  // ---- Part 4: sharded fleet (--shards=N) -----------------------------
  bool shard_ok = true;
  ShardBenchResult sharded;
  const auto nshards =
      static_cast<std::uint32_t>(opt.get_int("shards", 0));
  if (nshards > 0) {
    sharded = run_sharded(jobs, workers, nshards, clients, sweeps);
    shard_ok = report_sharded(jobs, nshards, sharded);
  }

  if (opt.has("json")) {
    JsonWriter w;
    w.field("bench", "service")
        .field("hardware_threads",
               static_cast<std::uint64_t>(support::hardware_threads()))
        .field("jobs", static_cast<std::uint64_t>(jobs))
        .field("workers", static_cast<std::uint64_t>(workers))
        .field("sweeps", static_cast<std::uint64_t>(sweeps))
        .field("cold_setup_ms_total", cold_sum * 1e3)
        .field("warm_setup_ms_total", warm_sum * 1e3)
        .field("cold_over_warm_ratio", ratio)
        .field("throughput_cache_off_jobs_per_s", off.jobs_per_second)
        .field("throughput_cache_on_jobs_per_s", on.jobs_per_second)
        .field("cache_hit_rate", on.stats.cache.hit_rate())
        .field("p50_latency_s", on.stats.p50_latency)
        .field("p95_latency_s", on.stats.p95_latency)
        .field("p99_latency_s", on.stats.p99_latency);
    if (run_net_part) {
      w.field("net_clients", static_cast<std::uint64_t>(clients))
          .field("net_jobs_per_s", net.jobs_per_second)
          .field("net_done", net.done)
          .field("net_coded", net.coded)
          .field("net_retries", net.client.retries)
          .field("net_reconnects", net.client.reconnects)
          .field("net_backoff_sleeps", net.client.backoff_sleeps)
          .field("net_backoff_ms_total", net.client.backoff_ms_total)
          .field("net_breaker_trips", net.client.breaker_trips)
          .field("net_breaker_half_open_probes",
                 net.client.breaker_half_open_probes)
          .field("net_breaker_closes", net.client.breaker_closes);
      if (net_faults) {
        w.field("net_chaos_jobs_per_s", net_chaos.jobs_per_second)
            .field("net_chaos_done", net_chaos.done)
            .field("net_chaos_coded", net_chaos.coded)
            .field("net_chaos_retries", net_chaos.client.retries)
            .field("net_chaos_transport_failures",
                   net_chaos.client.transport_failures)
            .field("net_chaos_backoff_sleeps",
                   net_chaos.client.backoff_sleeps)
            .field("net_chaos_backoff_ms_total",
                   net_chaos.client.backoff_ms_total)
            .field("net_chaos_breaker_trips",
                   net_chaos.client.breaker_trips);
      }
    }
    if (nshards > 0) {
      w.field("shard_count", static_cast<std::uint64_t>(nshards))
          .field("shard_jobs_per_s", sharded.jobs_per_second)
          .field("shard_done", sharded.done)
          .field("shard_coded", sharded.coded)
          .field("shard_reroutes", sharded.router.reroutes)
          .field("shard_forwards_min", sharded.forwards_min)
          .field("shard_forwards_max", sharded.forwards_max);
    }
    append_json_line(opt.get("json"), w.str());
    std::printf("appended JSON record to %s\n", opt.get("json").c_str());
  }
  // --small is the CI smoke shape: counts too small for the >= 10x
  // cold/warm ratio to be meaningful, so only correctness is gated.
  const bool ratio_ok = small || ratio >= 10.0;
  return ratio_ok && off.failed == 0 && on.failed == 0 &&
                 off.rejected == 0 && on.rejected == 0 && net_ok &&
                 shard_ok
             ? 0
             : 1;
}

}  // namespace
}  // namespace earthred

int main(int argc, char** argv) {
  const earthred::Options opt(argc, argv);
  return earthred::run(opt);
}
