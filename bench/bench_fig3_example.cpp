// Figure 3: the LightInspector worked example — 8 nodes, 20 edges,
// 2 processors, k = 2, processor 0 holding edges 0..9.
//
// The paper's figure shows the inspector's inputs (indir1_in/indir2_in)
// and outputs (the phase partition, the rewritten indirection arrays with
// buffer locations >= 8, and the second-loop copy arrays). This bench
// reconstructs the same setting and prints the full input/output so the
// figure can be compared structurally: 4 phases per processor, 2-node
// portions, remote buffer starting at location 8, deferred references
// redirected to 8, 9, ...
#include <cstdio>
#include <iostream>

#include "inspector/light_inspector.hpp"
#include "inspector/rotation.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace earthred;

  // A 20-edge mesh over 8 nodes; processor 0 owns edges 0..9 (block).
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges = {
      {0, 1}, {2, 3}, {0, 2}, {4, 5}, {6, 7},  // edges 0-4
      {1, 6}, {3, 5}, {7, 4}, {2, 6}, {0, 7},  // edges 5-9
  };

  const inspector::RotationSchedule sched(8, 2, 2);
  std::printf("Figure 3 setting: 8 nodes, 2 processors, k=2 -> %u phases, "
              "%u nodes per portion, remote buffer starts at location 8\n\n",
              sched.phases_per_sweep(), sched.portion_size(0));

  inspector::IterationRefs refs;
  refs.refs.resize(2);
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    refs.global_iter.push_back(e);
    refs.refs[0].push_back(edges[e].first);
    refs.refs[1].push_back(edges[e].second);
  }

  Table in("LightInspector input (processor 0)");
  in.set_header({"edge", "indir1_in", "indir2_in"});
  for (std::uint32_t e = 0; e < edges.size(); ++e)
    in.add_row({std::to_string(e), std::to_string(edges[e].first),
                std::to_string(edges[e].second)});
  in.print(std::cout);

  const inspector::InspectorResult res =
      inspector::run_light_inspector(sched, 0, refs);

  Table out("LightInspector output (processor 0)");
  out.set_header({"phase", "edges (iters_out)", "indir1_out", "indir2_out",
                  "copy_dst", "copy_src"});
  for (std::uint32_t ph = 0; ph < res.phases.size(); ++ph) {
    const auto& phase = res.phases[ph];
    auto join = [](std::span<const std::uint32_t> v) {
      std::string s;
      for (std::size_t i = 0; i < v.size(); ++i)
        s += (i ? "," : "") + std::to_string(v[i]);
      return s.empty() ? "-" : s;
    };
    out.add_row({std::to_string(ph), join(phase.iter_global),
                 join(phase.indir[0]), join(phase.indir[1]),
                 join(phase.copy_dst), join(phase.copy_src)});
  }
  out.print(std::cout);

  std::printf("\n%u buffer locations allocated (array extended from 8 to "
              "%llu);\nindir values >= 8 are deferred references; each "
              "appears once in a copy_src,\nfolded during the phase owning "
              "its copy_dst.\n",
              res.num_buffer_slots,
              static_cast<unsigned long long>(res.local_array_size));
  return 0;
}
