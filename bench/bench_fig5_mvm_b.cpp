// Figure 5: parallel performance of mvm on the NAS CG class B matrix
// (75,000 rows, ~13.7M nonzeros), P in {4, 8, 16, 32, 64}.
//
// Because of memory constraints the paper could not run class B
// sequentially or on 2 processors; relative speedups are therefore
// computed against the best 4-processor version, which was k=2
// (footnote, Sec. 5.3). This bench reports the same metric.
//
// Flags: --sweeps=N (default 3), --procs=..., --scale=D (divide the row
//        count by D for a quick run; default 1 = full class B),
//        --latency/--bandwidth/--cache-kb/--no-cache.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/mvm_engine.hpp"
#include "sparse/nas_cg.hpp"
#include "support/options.hpp"
#include "support/prng.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);

  const auto scale = static_cast<std::uint32_t>(opt.get_int("scale", 1));
  const sparse::NasCgParams params = sparse::nas_class_b_scaled(scale);
  const sparse::CsrMatrix A = sparse::make_nas_cg_matrix(params);
  std::vector<double> x(A.ncols());
  Xoshiro256 rng(1);
  for (auto& v : x) v = rng.uniform(-1, 1);

  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 3));
  const auto procs_list = opt.get_int_list("procs", {4, 8, 16, 32, 64});
  const earth::MachineConfig machine = bench::machine_from_options(opt);

  std::printf("mvm class B%s: %s rows, %s nonzeros, %u sweeps\n",
              scale == 1 ? "" : (" (1/" + std::to_string(scale) + ")").c_str(),
              fmt_group(A.nrows()).c_str(),
              fmt_group(static_cast<long long>(A.nnz())).c_str(), sweeps);

  std::vector<bench::Series> series;
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    bench::Series line;
    line.name = "k=" + std::to_string(k);
    for (const auto procs : procs_list) {
      const auto P = static_cast<std::uint32_t>(procs);
      core::MvmOptions mopt;
      mopt.num_procs = P;
      mopt.k = k;
      mopt.sweeps = sweeps;
      mopt.machine = machine;
      mopt.collect_results = false;
      const core::RunResult r = core::run_mvm_engine(A, x, mopt);
      line.points.push_back(
          {P, bench::to_seconds(r.total_cycles), 0.0});
      std::fflush(stdout);
    }
    series.push_back(std::move(line));
  }
  std::vector<std::uint32_t> procs_u32;
  procs_u32.reserve(procs_list.size());
  for (auto p : procs_list) procs_u32.push_back(static_cast<std::uint32_t>(p));

  // Times table.
  Table times("Figure 5 (mvm class B) — execution time (simulated seconds)");
  std::vector<std::string> header{"strategy"};
  for (auto p : procs_u32) header.push_back("P=" + std::to_string(p));
  times.set_header(header);
  for (const auto& s : series) {
    std::vector<std::string> row{s.name};
    for (auto p : procs_u32) row.push_back(fmt_f(s.seconds_at(p), 2));
    times.add_row(row);
  }
  times.print(std::cout);

  // Relative speedups vs the best 4-processor version (k=2, as in the
  // paper's footnote).
  const double base = series[1].seconds_at(procs_u32.front());
  Table rel("Figure 5 (mvm class B) — relative speedup vs best P=" +
            std::to_string(procs_u32.front()) + " (k=2)");
  rel.set_header(header);
  for (const auto& s : series) {
    std::vector<std::string> row{s.name};
    for (auto p : procs_u32) {
      const double t = s.seconds_at(p);
      row.push_back(t > 0 ? fmt_f(base / t, 2) : "-");
    }
    rel.add_row(row);
  }
  rel.print(std::cout);
  bench::maybe_write_figure_json(opt, "Figure 5 (mvm class B)", 0.0,
                                 procs_u32, series);
  return 0;
}
