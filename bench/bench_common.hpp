// Shared helpers for the paper-figure benches.
//
// Machine calibration: the paper's numbers come from a cycle-accurate
// simulator of the MANNA multiprocessor (50 MHz i860XP EU+SU per node,
// ~50 MB/s links). The defaults below approximate that balance point —
// 1 cycle/flop, ~1 byte/cycle links, tens-of-cycles EARTH operation and
// fiber switch overheads, 16 KB 4-way data cache — and reported "seconds"
// are simulated cycles divided by the 50 MHz clock. Absolute numbers are
// not expected to match the paper; the speedup *shapes* are.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "earth/types.hpp"
#include "support/json.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace earthred::bench {

constexpr double kClockHz = 50e6;  // i860XP clock

inline double to_seconds(earth::Cycles c) {
  return static_cast<double>(c) / kClockHz;
}

/// MANNA-like machine configuration (num_nodes filled in by engines).
inline earth::MachineConfig manna_machine() {
  earth::MachineConfig cfg;
  cfg.cost.flop = 1;
  cfg.cost.intop = 1;
  cfg.cost.fiber_switch = 40;
  cfg.cost.op_issue = 8;
  cfg.cost.su_event = 30;
  cfg.cost.cache_hit = 1;
  cfg.cost.cache_miss = 18;
  cfg.net.latency = 150;
  cfg.net.bytes_per_cycle = 1.0;
  cfg.net.inject_overhead = 50;
  cfg.cache.size_bytes = 16 * 1024;
  cfg.cache.line_bytes = 32;
  cfg.cache.ways = 4;
  cfg.max_events = 0;
  return cfg;
}

/// Applies --latency/--bandwidth/--cache-kb/--no-cache overrides.
inline earth::MachineConfig machine_from_options(const Options& opt) {
  earth::MachineConfig cfg = manna_machine();
  cfg.net.latency =
      static_cast<earth::Cycles>(opt.get_int("latency", static_cast<std::int64_t>(cfg.net.latency)));
  cfg.net.bytes_per_cycle =
      opt.get_double("bandwidth", cfg.net.bytes_per_cycle);
  cfg.cache.size_bytes = static_cast<std::uint32_t>(
      opt.get_int("cache-kb", cfg.cache.size_bytes / 1024) * 1024);
  if (opt.get_bool("no-cache", false)) cfg.cache.enabled = false;
  return cfg;
}

/// One measured series entry.
struct Point {
  std::uint32_t procs = 0;
  double seconds = 0.0;
  double speedup = 0.0;  ///< vs the sequential reference
};

/// A named series (one strategy line of a figure).
struct Series {
  std::string name;
  std::vector<Point> points;

  double seconds_at(std::uint32_t procs) const {
    for (const Point& pt : points)
      if (pt.procs == procs) return pt.seconds;
    return 0.0;
  }
  /// Relative speedup between two processor counts (the paper's 2->32
  /// metric).
  double relative_speedup(std::uint32_t from, std::uint32_t to) const {
    const double a = seconds_at(from);
    const double b = seconds_at(to);
    return b > 0.0 ? a / b : 0.0;
  }
};

/// Prints a figure as two tables: execution times and absolute speedups.
inline void print_figure(const std::string& title, double seq_seconds,
                         const std::vector<std::uint32_t>& procs,
                         const std::vector<Series>& series) {
  std::printf("\n");
  Table times(title + " — execution time (simulated seconds)");
  std::vector<std::string> header{"strategy"};
  for (auto p : procs) header.push_back("P=" + std::to_string(p));
  times.set_header(header);
  {
    std::vector<std::string> row{"sequential"};
    for (std::size_t i = 0; i < procs.size(); ++i)
      row.push_back(i == 0 ? fmt_f(seq_seconds, 2) : "");
    times.add_row(row);
    times.add_rule();
  }
  for (const Series& s : series) {
    std::vector<std::string> row{s.name};
    for (auto p : procs) row.push_back(fmt_f(s.seconds_at(p), 2));
    times.add_row(row);
  }
  times.print(std::cout);

  Table speed(title + " — absolute speedup vs sequential");
  speed.set_header(header);
  for (const Series& s : series) {
    std::vector<std::string> row{s.name};
    for (auto p : procs) {
      const double t = s.seconds_at(p);
      row.push_back(t > 0 ? fmt_f(seq_seconds / t, 2) : "-");
    }
    speed.add_row(row);
  }
  speed.print(std::cout);
}

/// Prints the paper's "relative speedup from->to" summary line per series.
inline void print_relative(const std::string& title, std::uint32_t from,
                           std::uint32_t to,
                           const std::vector<Series>& series) {
  Table t(title + " — relative speedup " + std::to_string(from) + "->" +
          std::to_string(to) + " processors");
  t.set_header({"strategy", "relative speedup"});
  for (const Series& s : series)
    t.add_row({s.name, fmt_f(s.relative_speedup(from, to), 2)});
  t.print(std::cout);
}

/// Coefficient of variation of per-(proc,phase) iteration counts — the
/// paper's load-balance diagnostic (Sec. 5.4.3).
inline double phase_imbalance(const core::RunResult& r) {
  return coefficient_of_variation(r.phase_iterations);
}

/// One figure as a compact JSON object: title, sequential baseline, and
/// every series' (procs, seconds, speedup) points.
inline std::string figure_json(const std::string& title, double seq_seconds,
                               const std::vector<std::uint32_t>& procs,
                               const std::vector<Series>& series) {
  std::vector<std::string> procs_json;
  for (const auto p : procs) procs_json.push_back(std::to_string(p));
  std::vector<std::string> series_json;
  for (const Series& s : series) {
    std::vector<std::string> pts;
    for (const Point& pt : s.points) {
      JsonWriter pw;
      pw.field("procs", pt.procs)
          .field("seconds", pt.seconds)
          .field("speedup", pt.speedup);
      pts.push_back(pw.str());
    }
    JsonWriter sw;
    sw.field("name", s.name).raw_field("points", json_array(pts));
    series_json.push_back(sw.str());
  }
  JsonWriter w;
  w.field("figure", title)
      .field("seq_seconds", seq_seconds)
      .raw_field("procs", json_array(procs_json))
      .raw_field("series", json_array(series_json));
  return w.str();
}

/// Honors the shared --json=<path> flag: appends one JSONL record per
/// figure so every bench can emit machine-readable results alongside its
/// tables (the BENCH_*.json perf trajectory).
inline void maybe_write_figure_json(const Options& opt,
                                    const std::string& title,
                                    double seq_seconds,
                                    const std::vector<std::uint32_t>& procs,
                                    const std::vector<Series>& series) {
  if (!opt.has("json")) return;
  append_json_line(opt.get("json"),
                   figure_json(title, seq_seconds, procs, series));
  std::printf("appended JSON record for '%s' to %s\n", title.c_str(),
              opt.get("json").c_str());
}

}  // namespace earthred::bench
