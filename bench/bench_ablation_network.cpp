// Ablation: network latency and bandwidth sensitivity.
//
// The strategy's premise is that "the performance obtained depends upon
// the architecture's ability to overlap communication and computation".
// Sweeping link latency shows where k=1 (no overlap window) falls off a
// cliff while k=2/k=4 keep masking the transfers, and sweeping bandwidth
// shows when even overlap cannot hide the volume.
//
// Flags: --sweeps=N (default 30), --procs=P (default 16),
//        --latencies=0,150,1000,4000,16000, --bandwidths-x100=25,50,100,200.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/reduction_engine.hpp"
#include "kernels/euler.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 30));
  const auto P = static_cast<std::uint32_t>(opt.get_int("procs", 16));
  const auto latencies =
      opt.get_int_list("latencies", {0, 150, 1000, 4000, 16000});
  const auto bandwidths =
      opt.get_int_list("bandwidths-x100", {25, 50, 100, 200});

  const kernels::EulerKernel kernel(mesh::euler_mesh_small());

  auto run = [&](earth::Cycles latency, double bw, std::uint32_t k) {
    core::RotationOptions ropt;
    ropt.num_procs = P;
    ropt.k = k;
    ropt.sweeps = sweeps;
    ropt.machine = bench::manna_machine();
    ropt.machine.net.latency = latency;
    ropt.machine.net.bytes_per_cycle = bw;
    ropt.collect_results = false;
    return bench::to_seconds(
        core::run_rotation_engine(kernel, ropt).total_cycles);
  };

  Table lat("Ablation — link latency (euler 2K, P=" + std::to_string(P) +
            ", 1 B/cycle)");
  lat.set_header({"latency (cycles)", "k=1", "k=2", "k=4",
                  "k=2 gain over k=1"});
  for (const auto l : latencies) {
    const auto lc = static_cast<earth::Cycles>(l);
    const double t1 = run(lc, 1.0, 1);
    const double t2 = run(lc, 1.0, 2);
    const double t4 = run(lc, 1.0, 4);
    lat.add_row({std::to_string(l), fmt_f(t1, 3), fmt_f(t2, 3),
                 fmt_f(t4, 3),
                 fmt_f(100.0 * (t1 - t2) / t2, 1) + "%"});
  }
  lat.print(std::cout);

  Table bw("Ablation — link bandwidth (euler 2K, P=" + std::to_string(P) +
           ", 150-cycle latency)");
  bw.set_header({"bytes/cycle", "k=1", "k=2", "k=4"});
  for (const auto b : bandwidths) {
    const double bpc = static_cast<double>(b) / 100.0;
    bw.add_row({fmt_f(bpc, 2), fmt_f(run(150, bpc, 1), 3),
                fmt_f(run(150, bpc, 2), 3), fmt_f(run(150, bpc, 4), 3)});
  }
  bw.print(std::cout);
  return 0;
}
