// Ablation: partitioning (in)dependence — the paper's central claim.
//
// "The key idea in our execution model is that the frequency and volume
// of communication is independent of the contents of the indirection
// arrays ... the performance ... is largely independent of the
// partitioning of the problem." (Abstract, Sec. 1)
//
// We renumber the euler mesh three ways — natural generator order,
// randomly scrambled, and RCB-partition-major — and run both engines on
// each. The classic owner-computes scheme's traffic and time swing with
// the numbering quality; the rotation scheme's message count and byte
// volume are identical across all three.
//
// Flags: --sweeps=N (default 30), --procs=P (default 16).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/classic_engine.hpp"
#include "core/reduction_engine.hpp"
#include "kernels/euler.hpp"
#include "mesh/generators.hpp"
#include "mesh/partition.hpp"
#include "support/options.hpp"
#include "support/prng.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 30));
  const auto P = static_cast<std::uint32_t>(opt.get_int("procs", 16));
  const earth::MachineConfig machine = bench::machine_from_options(opt);

  const mesh::Mesh natural = mesh::euler_mesh_small();

  // Scrambled numbering.
  Xoshiro256 rng(101);
  std::vector<std::uint32_t> shuffle(natural.num_nodes);
  for (std::uint32_t i = 0; i < natural.num_nodes; ++i) shuffle[i] = i;
  for (std::uint32_t i = natural.num_nodes - 1; i > 0; --i)
    std::swap(shuffle[i], shuffle[rng.below(i + 1)]);
  const mesh::Mesh scrambled = mesh::renumber(natural, shuffle);

  // RCB-partitioned numbering (aligned with P block owners).
  const auto part = mesh::rcb_partition(scrambled, P);
  const auto perm = mesh::partition_order(part, P);
  const mesh::Mesh partitioned = mesh::renumber(scrambled, perm);

  std::printf("euler 2K, %u sweeps, P=%u; RCB edge cut: %llu of %llu\n",
              sweeps, P,
              static_cast<unsigned long long>(
                  mesh::edge_cut(scrambled, part)),
              static_cast<unsigned long long>(scrambled.num_edges()));

  Table t("Ablation — numbering/partitioning sensitivity");
  t.set_header({"numbering", "engine", "time (s)", "msgs", "bytes"});

  const struct {
    const char* name;
    const mesh::Mesh* mesh;
  } variants[] = {{"natural", &natural},
                  {"scrambled", &scrambled},
                  {"RCB-partitioned", &partitioned}};

  for (const auto& v : variants) {
    const kernels::EulerKernel kernel(*v.mesh);
    {
      core::RotationOptions ropt;
      ropt.num_procs = P;
      ropt.k = 2;
      ropt.sweeps = sweeps;
      ropt.machine = machine;
      ropt.collect_results = false;
      const core::RunResult r = core::run_rotation_engine(kernel, ropt);
      t.add_row({v.name, "rotation",
                 fmt_f(bench::to_seconds(r.total_cycles), 3),
                 fmt_group(static_cast<long long>(r.machine.total_msgs())),
                 fmt_group(static_cast<long long>(r.machine.total_bytes()))});
    }
    {
      core::ClassicOptions copt;
      copt.num_procs = P;
      copt.sweeps = sweeps;
      copt.machine = machine;
      copt.collect_results = false;
      const core::RunResult r = core::run_classic_engine(kernel, copt);
      t.add_row({v.name, "classic",
                 fmt_f(bench::to_seconds(r.total_cycles), 3),
                 fmt_group(static_cast<long long>(r.machine.total_msgs())),
                 fmt_group(static_cast<long long>(r.machine.total_bytes()))});
    }
  }
  t.print(std::cout);
  std::printf("rotation rows must be identical across numberings; classic "
              "rows degrade without partitioning.\n");
  return 0;
}
