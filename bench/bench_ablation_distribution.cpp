// Ablation: iteration distribution, beyond the paper's block/cyclic pair.
//
// The paper evaluates block and cyclic (Sec. 5.4.1) and finds block's
// phase load imbalance the decisive factor at scale. HPF-style
// block-cyclic interpolates between the two: this sweep maps the whole
// spectrum (chunk 1 = cyclic ... chunk n/P = block) for euler and moldyn,
// reporting time and the phase-size imbalance that explains it.
//
// Flags: --sweeps=N (default 30), --procs=P (default 32),
//        --chunks=1,4,16,64,256.
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/reduction_engine.hpp"
#include "kernels/euler.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 30));
  const auto P = static_cast<std::uint32_t>(opt.get_int("procs", 32));
  const auto chunks = opt.get_int_list("chunks", {1, 4, 16, 64, 256});
  const earth::MachineConfig machine = bench::machine_from_options(opt);

  const kernels::EulerKernel euler(mesh::euler_mesh_small());
  const kernels::MoldynKernel moldyn(mesh::moldyn_small());

  Table t("Ablation — iteration distribution spectrum (k=2, P=" +
          std::to_string(P) + ")");
  t.set_header({"distribution", "euler time (s)", "euler CoV",
                "moldyn time (s)", "moldyn CoV"});

  auto run = [&](const core::PhasedKernel& kernel,
                 inspector::Distribution d, std::uint32_t chunk,
                 double* time_out, double* cov_out) {
    core::RotationOptions ropt;
    ropt.num_procs = P;
    ropt.k = 2;
    ropt.distribution = d;
    ropt.block_cyclic_size = chunk;
    ropt.sweeps = sweeps;
    ropt.machine = machine;
    ropt.collect_results = false;
    const core::RunResult r = core::run_rotation_engine(kernel, ropt);
    *time_out = bench::to_seconds(r.total_cycles);
    *cov_out = bench::phase_imbalance(r);
  };

  auto row = [&](const std::string& name, inspector::Distribution d,
                 std::uint32_t chunk) {
    double te = 0, ce = 0, tm = 0, cm = 0;
    run(euler, d, chunk, &te, &ce);
    run(moldyn, d, chunk, &tm, &cm);
    t.add_row({name, fmt_f(te, 3), fmt_f(ce, 3), fmt_f(tm, 3),
               fmt_f(cm, 3)});
  };

  row("cyclic", inspector::Distribution::Cyclic, 1);
  for (const auto c : chunks) {
    if (c <= 1) continue;
    row("block-cyclic(" + std::to_string(c) + ")",
        inspector::Distribution::BlockCyclic,
        static_cast<std::uint32_t>(c));
  }
  row("block", inspector::Distribution::Block, 1);
  t.print(std::cout);
  return 0;
}
